// Package results implements the durable per-partition result store of
// the one-step incremental engine (internal/incr). A Store holds the
// materialized Reduce outputs of one reduce partition as a map from a
// group key (the Reduce input key K2, or K3 for accumulator jobs) to
// the output pairs that group's Reduce call emitted.
//
// Incremental view-maintenance systems treat the materialized result as
// a first-class store that is *patched*, not rebuilt: a delta refresh
// replaces or deletes only the affected groups, and the store remembers
// everything else. The on-disk layout follows the small-LSM shape used
// throughout this codebase (cf. the MRBG-Store):
//
//	results.meta — the manifest: segment list (oldest first), the
//	               segment sequence counter, and the DFS path the
//	               store was last materialized to. Written atomically
//	               (temp file + rename + dir sync); its presence marks
//	               the store as initialized, which incr.Open relies on
//	               to resume a runner after process death.
//	seg-*.seg    — immutable segments: group records sorted by group
//	               key. A record is either a live group (its output
//	               pairs) or a tombstone (the group was deleted).
//
// # Segment formats
//
// New segments are written in the v2 block format (internal/blockio):
// records are packed into ~32 KiB blocks, each CRC-checked and
// optionally compressed, under a sparse first-key-per-block index and a
// per-segment bloom filter. A point lookup probes the bloom filter
// (an absent key usually costs zero I/O), then reads exactly one block.
// Legacy v1 segments — flat record streams indexed by a full in-memory
// key map built at Open — remain readable forever: Open sniffs each
// file's magic and falls back, and the next compaction rewrites the
// data forward into v2. The manifest format is unchanged ("results v1"
// names the manifest schema; segments self-describe their own format).
//
// Mutations accumulate in an in-memory memtable; Checkpoint flushes it
// as a new segment and persists the manifest. Reads overlay the
// memtable over the segments newest-first. When the segment count
// reaches Options.CompactThreshold, Checkpoint folds all segments into
// one, dropping tombstones and obsolete group versions — the
// "reconstructed when idle" treatment the paper gives the MRBGraph
// file, applied to the result set.
//
// # Snapshot isolation
//
// Reads are snapshot-isolated so a serving layer can query the store
// while a refresh mutates it. Store.Snapshot captures the current
// segment set plus a frozen view of the memtable; Get, MultiGet, and
// AllGroups run against such a snapshot without blocking writers (the
// store mutex is held only for the capture itself and for memtable
// mutations — never across segment I/O). Segments are refcounted:
// compaction and Reset detach obsolete segments but defer closing and
// deleting their files until the last snapshot referencing them is
// released, so a snapshot keeps reading the exact bytes it was captured
// over no matter how many refreshes and compactions run meanwhile. A
// segment file whose deferred deletion fails is left behind as an
// orphan, counted in Stats.Orphaned; the next Open re-sweeps orphans
// (any seg-*.seg file the manifest does not reference).
package results

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"i2mapreduce/internal/blockio"
	"i2mapreduce/internal/fsutil"
	"i2mapreduce/internal/kv"
)

// DefaultCompactThreshold is the segment count at which Checkpoint
// compacts, when Options.CompactThreshold is zero.
const DefaultCompactThreshold = 4

// Options configures a Store.
type Options struct {
	// Dir is the directory holding the manifest and segments. Required.
	Dir string
	// CompactThreshold is the number of on-disk segments that triggers a
	// compaction during Checkpoint. 0 means DefaultCompactThreshold; a
	// negative value disables compaction entirely.
	CompactThreshold int
	// BlockBytes is the target decoded bytes per segment block in newly
	// written (v2) segments. 0 means blockio.DefaultBlockBytes (32 KiB).
	BlockBytes int
	// Compression selects the per-block codec for newly written
	// segments: "" or "none" (raw), or "flate". Reads auto-detect each
	// block's codec, so the knob can change between runs freely.
	Compression string
	// BloomBitsPerKey sizes the per-segment bloom filter. 0 means
	// blockio.DefaultBloomBitsPerKey (10, ~1% false positives); a
	// negative value disables the filter.
	BloomBitsPerKey int
}

// Stats reports the store's shape and maintenance work.
type Stats struct {
	// Segments is the current on-disk segment count.
	Segments int
	// SegmentBytes is the total encoded size of those segments.
	SegmentBytes int64
	// Compactions counts compactions since Open.
	Compactions int64
	// CompactedBytes counts the obsolete segment bytes dropped by those
	// compactions (pre-compaction size minus post-compaction size).
	CompactedBytes int64
	// Flushes counts memtable flushes (checkpointed segments written).
	Flushes int64
	// Orphaned counts segment files whose deletion failed and were left
	// on disk unreferenced by the manifest — a durable-space leak signal
	// (the next Open re-sweeps them). Includes sweep failures at Open.
	Orphaned int64
	// BlocksRead counts segment blocks decoded by reads and merges (v2
	// segments only; a point hit costs exactly one).
	BlocksRead int64
	// BloomSkips counts segment probes answered "absent" by a segment's
	// bloom filter with zero block I/O.
	BloomSkips int64
	// BytesDecompressed counts decoded bytes produced by per-block
	// decompression on the read path (zero when Compression is "none").
	BytesDecompressed int64
}

// removeFile deletes a segment file; a package variable so tests can
// exercise the deletion-failure (orphan) accounting.
var removeFile = os.Remove

// entry is one memtable slot: a group's pending output pairs, or a
// tombstone marking the group deleted.
type entry struct {
	pairs []kv.Pair
	tomb  bool
}

// segLoc locates one group record inside a segment file.
type segLoc struct {
	off int64
	len int64
}

// segment is one immutable sorted run of group records. Exactly one of
// bf (v2 block format) and index (legacy v1 flat format) is set; the
// file and both never change after creation. The lifecycle fields
// below are guarded by the owning Store's mu.
type segment struct {
	path  string
	f     *os.File
	bf    *blockio.File     // v2: parsed block index + bloom filter
	index map[string]segLoc // v1: full in-memory key → location map
	bytes int64

	// refs counts snapshots (and transient point-read pins) holding the
	// segment open.
	refs int
	// detached marks a segment the store no longer lists (dropped by
	// compaction, Reset, or Close); it is destroyed when refs reaches
	// zero.
	detached bool
	// remove requests file deletion at destruction (compaction and
	// Reset set it; Close does not — the files are still live state).
	remove bool
}

// Store is one partition's durable result store. All methods are safe
// for concurrent use. mu guards the memtable and the segment list and
// is held only for short critical sections; maintMu serializes the
// maintenance operations (Checkpoint, Compact, Reset, Close) whose
// heavy I/O runs off-lock, so readers never stall behind a segment
// flush or a compaction merge.
type Store struct {
	mu      sync.Mutex
	maintMu sync.Mutex
	opts    Options
	seq     int64 // next segment sequence number; guarded by mu
	segs    []*segment
	// initialized reports whether a manifest existed when the store was
	// opened — i.e. a previous process checkpointed results here.
	initialized bool
	mem         map[string]entry
	// imm is the frozen memtable a Checkpoint is currently flushing
	// (nil otherwise). Reads overlay mem over imm over the segments.
	imm map[string]entry
	// discards counts DiscardPending calls; a failed flush folds its
	// frozen entries back only if no discard happened since the freeze
	// (unfreeze must not resurrect discarded mutations).
	discards   int64
	dirty      bool
	lastOutput string
	stats      Stats

	// blockOpts is the resolved blockio configuration every new segment
	// is written with. Immutable after Open.
	blockOpts blockio.Options
	// sched, when attached, takes over threshold compaction: Checkpoint
	// stops compacting inline (a refresh pays only flush + manifest
	// commit) and notifies the scheduler instead. Guarded by mu.
	sched *Scheduler
	// fileStats / bloomSkips account the lock-free segment read path
	// (snapshot reads hold no store lock); folded into Stats().
	fileStats  blockio.FileStats
	bloomSkips atomic.Int64
}

const manifestName = "results.meta"

// Open creates a store in opts.Dir or recovers the one checkpointed
// there. Segments written but never referenced by the manifest (a crash
// between segment write and manifest commit, or a deferred deletion
// that failed) are swept; sweep failures count into Stats.Orphaned.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("results: Options.Dir is required")
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	codec, err := blockio.ParseCodec(opts.Compression)
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: creating dir: %w", err)
	}
	s := &Store{opts: opts, mem: make(map[string]entry)}
	s.blockOpts = blockio.Options{
		BlockBytes:      opts.BlockBytes,
		Codec:           codec,
		BloomBitsPerKey: opts.BloomBitsPerKey,
	}
	names, last, seq, ok, err := readManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.initialized = ok
	s.seq = seq
	s.lastOutput = last
	referenced := make(map[string]bool, len(names))
	for _, name := range names {
		referenced[name] = true
		seg, err := s.openSegment(filepath.Join(opts.Dir, name))
		if err != nil {
			s.closeSegments()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	// Re-sweep orphaned segment files: leftovers of a crash
	// mid-checkpoint or of an earlier deletion failure.
	dirEnts, err := os.ReadDir(opts.Dir)
	if err != nil {
		s.closeSegments()
		return nil, err
	}
	for _, de := range dirEnts {
		name := de.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") && !referenced[name] {
			if err := removeFile(filepath.Join(opts.Dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				s.stats.Orphaned++
			}
		}
	}
	return s, nil
}

// Initialized reports whether the store was recovered from a manifest a
// previous process wrote — the signal incr.Open uses to decide that a
// preserved computation exists.
func (s *Store) Initialized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.initialized
}

func (s *Store) closeSegments() {
	for _, seg := range s.segs {
		//i2vet:allow errclose read-side segment handle; the segment's bytes were fsynced when its writer finished
		seg.f.Close()
	}
}

// releaseLocked drops one reference to seg, destroying it if it was the
// last and the store has detached the segment. Callers hold s.mu.
func (s *Store) releaseLocked(seg *segment) error {
	seg.refs--
	if seg.refs == 0 && seg.detached {
		return s.destroyLocked(seg)
	}
	return nil
}

// dropLocked detaches seg from the store; the file is deleted at
// destruction when remove is set. Destruction happens immediately when
// no snapshot pins the segment, otherwise at the last release. Callers
// hold s.mu and must have removed seg from s.segs (or be about to).
func (s *Store) dropLocked(seg *segment, remove bool) error {
	seg.detached, seg.remove = true, remove
	if seg.refs == 0 {
		return s.destroyLocked(seg)
	}
	return nil
}

// destroyLocked closes the segment file and, if requested, deletes it,
// reporting the close error (a write-back fault at shutdown must not
// pass silently). A failed deletion leaves an orphan: surfaced in
// Stats.Orphaned and re-swept by the next Open (the manifest no longer
// references it).
func (s *Store) destroyLocked(seg *segment) error {
	cerr := seg.f.Close()
	if seg.remove {
		if err := removeFile(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.stats.Orphaned++
		}
	}
	return cerr
}

// Reset discards the store's entire contents — memtable, segments, and
// manifest — returning it to the freshly-created state. The one-step
// engine uses it to clear the partial results of an initial run that
// died before committing its completion marker. The manifest is removed
// first, so a crash mid-Reset leaves an uninitialized store plus orphan
// segments (cleaned by the next Open), never a manifest referencing
// deleted files. Snapshots captured before the Reset keep reading the
// pre-Reset data until released.
func (s *Store) Reset() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := os.Remove(filepath.Join(s.opts.Dir, manifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// The unlink must be durable before any referenced segment goes, or
	// a crash could resurrect a manifest pointing at deleted files.
	if err := fsutil.SyncDir(s.opts.Dir); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		s.dropLocked(seg, true)
	}
	s.segs = nil
	s.mem = make(map[string]entry)
	s.initialized = false
	s.dirty = false
	s.lastOutput = ""
	return nil
}

// Close detaches the segment files without checkpointing. Pending
// memtable mutations are lost (they were never promised durable); a
// segment still pinned by an open snapshot stays readable until the
// snapshot is released.
func (s *Store) Close() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := s.dropLocked(seg, false); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}

// Set replaces group key's output pairs. The slice is retained; callers
// must not mutate it afterwards.
func (s *Store) Set(key string, pairs []kv.Pair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{pairs: pairs}
	s.dirty = true
}

// DiscardPending drops every uncheckpointed mutation (the memtable),
// restoring the in-memory view to the last durable state. The one-step
// engine calls it at the start of an accumulator reduce task attempt so
// a retried attempt re-folds its groups from clean state instead of
// double-accumulating on top of the failed attempt's partial folds. The
// dirty flag is left as-is (conservatively: an unnecessary rewrite is
// safe, a skipped one is not). Mutations a concurrent Checkpoint has
// already frozen for flushing are past discarding — they commit with
// that checkpoint, exactly as if it had completed before this call —
// but a discard does bar a *failed* flush from resurrecting them.
func (s *Store) DiscardPending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem = make(map[string]entry)
	s.discards++
}

// Delete removes group key (a tombstone is durably recorded so the
// deletion survives restarts even while older segments still hold the
// group).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mem[key] = entry{tomb: true}
	s.dirty = true
}

// copyPairs returns a defensive copy of a memtable-backed pair slice:
// Set retains the caller's slice, so handing the same backing array
// back out of Get would let a reader mutation silently corrupt pending
// durable state.
func copyPairs(ps []kv.Pair) []kv.Pair {
	if ps == nil {
		return nil
	}
	return append([]kv.Pair(nil), ps...)
}

// Get returns group key's current output pairs (memtable first, then
// segments newest to oldest). ok is false when the group is absent or
// tombstoned. The returned slice is the caller's to keep. The store
// mutex is held only to locate the record; the segment read itself runs
// off-lock against a pinned segment, so point lookups never stall
// behind a checkpoint or compaction.
func (s *Store) Get(key string) ([]kv.Pair, bool, error) {
	s.mu.Lock()
	if e, ok := s.mem[key]; ok {
		s.mu.Unlock()
		if e.tomb {
			return nil, false, nil
		}
		return copyPairs(e.pairs), true, nil
	}
	if e, ok := s.imm[key]; ok {
		s.mu.Unlock()
		if e.tomb {
			return nil, false, nil
		}
		return copyPairs(e.pairs), true, nil
	}
	// Pin the whole segment list for the probe (a mini-snapshot without
	// the memtable copy): a v2 probe is not resolved until its candidate
	// block has been read off-lock, and a miss must continue to the next
	// older segment, which by then may have been compacted away.
	segs := append([]*segment(nil), s.segs...)
	for _, seg := range segs {
		seg.refs++
	}
	s.mu.Unlock()
	pairs, found, err := s.getFromSegments(segs, key)
	s.mu.Lock()
	for _, seg := range segs {
		s.releaseLocked(seg)
	}
	s.mu.Unlock()
	return pairs, found, err
}

// getFromSegments probes pinned segments newest-first for key. Takes
// no lock; used by Store.Get and snapshot reads alike.
func (s *Store) getFromSegments(segs []*segment, key string) ([]kv.Pair, bool, error) {
	for i := len(segs) - 1; i >= 0; i-- {
		rec, ok, err := s.segGet(segs[i], key)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		if rec.tomb {
			return nil, false, nil
		}
		return rec.pairs, true, nil
	}
	return nil, false, nil
}

// segGet probes one segment for key. A false answer is definitive for
// that segment (the bloom filter never false-negatives, and the block
// scan is exact), so callers fall through to the next older segment.
func (s *Store) segGet(seg *segment, key string) (record, bool, error) {
	if seg.bf == nil {
		// v1 flat segment: full in-memory index, definitive either way.
		l, ok := seg.index[key]
		if !ok {
			return record{}, false, nil
		}
		rec, err := seg.readRecord(l)
		if err != nil {
			return record{}, false, err
		}
		return rec, true, nil
	}
	if !seg.bf.MayContain(key) {
		s.bloomSkips.Add(1)
		return record{}, false, nil
	}
	bi, ok := seg.bf.FindBlock(key)
	if !ok {
		return record{}, false, nil
	}
	buf := blockio.GetBuf()
	defer blockio.PutBuf(buf)
	data, err := seg.bf.ReadBlock(bi, buf)
	if err != nil {
		return record{}, false, err
	}
	return findInBlock(data, key)
}

// MultiGet answers a batch of point lookups against one consistent
// snapshot: pairs[i], found[i] correspond to keys[i].
func (s *Store) MultiGet(keys []string) (pairs [][]kv.Pair, found []bool, err error) {
	sn := s.Snapshot()
	defer sn.Close()
	return sn.MultiGet(keys)
}

// Pending reports the number of uncheckpointed mutations in the
// memtable — the dirty groups the next Checkpoint will flush (including
// a freeze a concurrent Checkpoint has in flight).
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem) + len(s.imm)
}

// Dirty reports whether the store changed since it was last
// materialized to a DFS output file.
func (s *Store) Dirty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty
}

// LastOutput returns the DFS path this store was last materialized to
// ("" if never).
func (s *Store) LastOutput() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastOutput
}

// Materialized records that the store's current contents were written
// to the DFS path, clearing the dirty flag and persisting the path so a
// resumed runner knows where its last output lives. The manifest fsync
// runs off the read lock (under the maintenance mutex, like every
// manifest commit).
func (s *Store) Materialized(path string) error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	s.dirty = false
	s.lastOutput = path
	s.mu.Unlock()
	return s.commitManifest()
}

// Stats returns a snapshot of the store's shape counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segs)
	st.SegmentBytes = 0
	for _, seg := range s.segs {
		st.SegmentBytes += seg.bytes
	}
	st.BlocksRead = s.fileStats.BlocksRead.Load()
	st.BytesDecompressed = s.fileStats.BytesDecompressed.Load()
	st.BloomSkips = s.bloomSkips.Load()
	return st
}

// record is one decoded group record.
type record struct {
	key   string
	pairs []kv.Pair
	tomb  bool
}

// sortedRecords flattens a memtable view into key-sorted records;
// defensive requests copies of the pair slices (for views handed to
// callers, which must not alias pending durable state).
func sortedRecords(m map[string]entry, defensive bool) []record {
	recs := make([]record, 0, len(m))
	for k, e := range m {
		ps := e.pairs
		if defensive {
			ps = copyPairs(ps)
		}
		recs = append(recs, record{key: k, pairs: ps, tomb: e.tomb})
	}
	slices.SortFunc(recs, func(a, b record) int { return strings.Compare(a.key, b.key) })
	return recs
}

// ---------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------

// Snapshot is an immutable point-in-time view of a Store: the segment
// set at capture plus a frozen view of the memtable. Reads against a
// snapshot take no store lock and are unaffected by later Sets,
// Checkpoints, Compacts, or Resets — compaction defers deleting the
// segment files a snapshot references until the snapshot is released.
// A Snapshot is safe for concurrent use by many readers; Close releases
// it (idempotent) and must be called exactly when no reads are in
// flight anymore. Reading a closed snapshot is a bug (the pinned
// segment files may have been closed and deleted).
type Snapshot struct {
	s    *Store
	segs []*segment // oldest first, pinned via refs
	// overlay is the frozen memtable view (live memtable over any
	// mid-flush frozen memtable); nil when both were empty.
	overlay map[string]entry
	closed  bool
}

// Snapshot captures the store's current contents. The store mutex is
// held only for the capture (reference bumps and a memtable map copy),
// never across I/O.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := append([]*segment(nil), s.segs...)
	for _, seg := range segs {
		seg.refs++
	}
	var overlay map[string]entry
	if len(s.mem)+len(s.imm) > 0 {
		overlay = make(map[string]entry, len(s.mem)+len(s.imm))
		for k, e := range s.imm {
			overlay[k] = e
		}
		for k, e := range s.mem {
			overlay[k] = e
		}
	}
	return &Snapshot{s: s, segs: segs, overlay: overlay}
}

// Close releases the snapshot's segment pins; segments made obsolete by
// a compaction or Reset since the capture are destroyed (file closed
// and deleted) when their last pin drops. Idempotent.
func (sn *Snapshot) Close() error {
	sn.s.mu.Lock()
	defer sn.s.mu.Unlock()
	if sn.closed {
		return nil
	}
	sn.closed = true
	var first error
	for _, seg := range sn.segs {
		if err := sn.s.releaseLocked(seg); err != nil && first == nil {
			first = err
		}
	}
	sn.segs = nil
	return first
}

// Get returns group key's pairs as of the snapshot; ok is false when
// the group is absent or tombstoned. Lock-free and safe for concurrent
// use.
func (sn *Snapshot) Get(key string) ([]kv.Pair, bool, error) {
	if e, ok := sn.overlay[key]; ok {
		if e.tomb {
			return nil, false, nil
		}
		return copyPairs(e.pairs), true, nil
	}
	return sn.s.getFromSegments(sn.segs, key)
}

// GetCached is Get through a BlockCache: each decoded v2 segment block
// the lookup touches is materialized into (or served from) bc, so a
// working set of hot blocks is decoded once per cache lifetime instead
// of once per lookup. fromCache reports whether the answer came from a
// cached block (false for memtable-overlay answers, v1 segments, and
// overall misses). The serving layer keys one BlockCache per epoch;
// because segments are immutable a cached block can never be stale.
func (sn *Snapshot) GetCached(key string, bc *BlockCache) (pairs []kv.Pair, found, fromCache bool, err error) {
	if e, ok := sn.overlay[key]; ok {
		if e.tomb {
			return nil, false, false, nil
		}
		return copyPairs(e.pairs), true, false, nil
	}
	for i := len(sn.segs) - 1; i >= 0; i-- {
		seg := sn.segs[i]
		if seg.bf == nil || bc == nil {
			rec, ok, err := sn.s.segGet(seg, key)
			if err != nil {
				return nil, false, false, err
			}
			if !ok {
				continue
			}
			if rec.tomb {
				return nil, false, false, nil
			}
			return rec.pairs, true, false, nil
		}
		if !seg.bf.MayContain(key) {
			sn.s.bloomSkips.Add(1)
			continue
		}
		bi, ok := seg.bf.FindBlock(key)
		if !ok {
			continue
		}
		recs, cached, err := bc.block(seg, bi)
		if err != nil {
			return nil, false, false, err
		}
		j := sort.Search(len(recs), func(j int) bool { return recs[j].key >= key })
		if j >= len(recs) || recs[j].key != key {
			continue // definitive miss for this segment
		}
		if recs[j].tomb {
			return nil, false, cached, nil
		}
		return copyPairs(recs[j].pairs), true, cached, nil
	}
	return nil, false, false, nil
}

// BlockCache is a bounded cache of materialized segment blocks, keyed
// by block identity (segment, block index). Entries are decoded,
// key-sorted record slices; they are immutable and shared, so callers
// must copy pairs before handing them out. Because segments never
// change after creation there is no invalidation: drop the whole cache
// when its working set should die (the serving layer drops one per
// epoch flip). When full it stops admitting new blocks — the hot set
// is whatever got in first. Safe for concurrent use.
type BlockCache struct {
	mu  sync.RWMutex
	cap int
	m   map[blockCacheKey][]record
}

type blockCacheKey struct {
	seg *segment
	idx int
}

// DefaultBlockCacheSize is the NewBlockCache capacity when size is 0.
const DefaultBlockCacheSize = 256

// NewBlockCache returns a cache holding up to size decoded blocks.
// 0 means DefaultBlockCacheSize; negative disables caching (every
// lookup decodes its block afresh).
func NewBlockCache(size int) *BlockCache {
	if size == 0 {
		size = DefaultBlockCacheSize
	}
	if size < 0 {
		return &BlockCache{}
	}
	return &BlockCache{cap: size, m: make(map[blockCacheKey][]record, size/4)}
}

// Len reports the number of blocks currently cached.
func (bc *BlockCache) Len() int {
	bc.mu.RLock()
	defer bc.mu.RUnlock()
	return len(bc.m)
}

// block returns segment seg's block bi as sorted records, decoding and
// (capacity permitting) admitting it on first touch. cached reports
// whether the block was already resident.
func (bc *BlockCache) block(seg *segment, bi int) (recs []record, cached bool, err error) {
	k := blockCacheKey{seg: seg, idx: bi}
	if bc.cap > 0 {
		bc.mu.RLock()
		recs, cached = bc.m[k]
		bc.mu.RUnlock()
		if cached {
			return recs, true, nil
		}
	}
	buf := blockio.GetBuf()
	data, err := seg.bf.ReadBlock(bi, buf)
	if err != nil {
		blockio.PutBuf(buf)
		return nil, false, err
	}
	for len(data) > 0 {
		rec, n, err := decodeRecord(data)
		if err != nil {
			blockio.PutBuf(buf)
			return nil, false, fmt.Errorf("results: %s block %d: %w", seg.path, bi, err)
		}
		recs = append(recs, rec)
		data = data[n:]
	}
	blockio.PutBuf(buf)
	if bc.cap > 0 {
		bc.mu.Lock()
		if len(bc.m) < bc.cap {
			bc.m[k] = recs
		}
		bc.mu.Unlock()
	}
	return recs, false, nil
}

// MultiGet answers a batch of point lookups: pairs[i], found[i]
// correspond to keys[i].
func (sn *Snapshot) MultiGet(keys []string) (pairs [][]kv.Pair, found []bool, err error) {
	pairs = make([][]kv.Pair, len(keys))
	found = make([]bool, len(keys))
	for i, k := range keys {
		ps, ok, err := sn.Get(k)
		if err != nil {
			return nil, nil, err
		}
		pairs[i], found[i] = ps, ok
	}
	return pairs, found, nil
}

// AllGroups streams every live group as of the snapshot in ascending
// group-key order (newest version wins per key, tombstones skipped).
// The pairs slice is owned by the callback only until it returns.
func (sn *Snapshot) AllGroups(fn func(key string, pairs []kv.Pair) error) error {
	return mergeRecords(sn.segs, sortedRecords(sn.overlay, true), func(r record) error {
		if r.tomb {
			return nil
		}
		return fn(r.key, r.pairs)
	})
}

// AllGroups streams every live group in ascending group-key order,
// overlaying the memtable on the segments (newest wins per key,
// tombstones skipped). It runs against an internally captured snapshot,
// so concurrent writers are never blocked for the duration of the
// stream. The pairs slice is owned by the callback only until it
// returns.
func (s *Store) AllGroups(fn func(key string, pairs []kv.Pair) error) error {
	sn := s.Snapshot()
	defer sn.Close()
	return sn.AllGroups(fn)
}

// ---------------------------------------------------------------------
// Checkpoint / compaction.
// ---------------------------------------------------------------------

// Checkpoint makes the store durable: the memtable (if non-empty)
// flushes as a new sorted segment, the manifest commits, and — when the
// segment count reaches the compaction threshold — the segments fold
// into one. Always writes the manifest, so a fresh store becomes
// Initialized after its first Checkpoint even with no groups. The
// segment write and any compaction merge run off the read lock;
// concurrent readers and snapshots are never blocked behind them.
func (s *Store) Checkpoint() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := s.flush(); err != nil {
		return err
	}
	s.mu.Lock()
	n := len(s.segs)
	sched := s.sched
	s.mu.Unlock()
	committed := false
	// With a background scheduler attached, compaction leaves the
	// critical path entirely: Checkpoint only flushes and commits, and
	// the scheduler (notified below) folds segments behind the refresh.
	if sched == nil && s.opts.CompactThreshold > 0 && n >= s.opts.CompactThreshold {
		var err error
		if committed, err = s.compact(); err != nil {
			return err
		}
	}
	// A compaction already committed the manifest (it must, before
	// deleting the folded segments); don't pay a second identical fsync.
	if !committed {
		if err := s.commitManifest(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.initialized = true
	s.mu.Unlock()
	sched.Notify(s)
	return nil
}

// AttachScheduler hands the store's threshold compaction to a
// background Scheduler (nil detaches, restoring inline compaction).
// See Checkpoint.
func (s *Store) AttachScheduler(sched *Scheduler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sched = sched
}

// CompactDue reports whether the store's segment shape has crossed a
// compaction trigger: its segment-count threshold, or byteTrigger > 0
// and the total segment bytes at or above it. Always false with a
// single segment (nothing to fold) or with compaction disabled
// (negative CompactThreshold).
func (s *Store) CompactDue(byteTrigger int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) <= 1 || s.opts.CompactThreshold < 0 {
		return false
	}
	if s.opts.CompactThreshold > 0 && len(s.segs) >= s.opts.CompactThreshold {
		return true
	}
	if byteTrigger > 0 {
		var b int64
		for _, seg := range s.segs {
			b += seg.bytes
		}
		return b >= byteTrigger
	}
	return false
}

// Compact folds every segment into one, dropping tombstones and
// obsolete group versions. Intended for idle periods; Checkpoint calls
// it automatically at the threshold. The merge runs off the read lock;
// open snapshots keep the pre-compaction segment files alive until
// released.
func (s *Store) Compact() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	_, err := s.compact()
	return err
}

// flush freezes the memtable and writes it as a new fsynced segment.
// Runs with maintMu held; mu is taken only for the freeze and the
// commit, so readers see either the pre-flush or post-flush state and
// never wait on the segment write. On error the frozen entries fold
// back under the live memtable (entries written meanwhile win).
func (s *Store) flush() error {
	s.mu.Lock()
	if len(s.mem) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.imm = s.mem
	s.mem = make(map[string]entry)
	frozen := s.imm
	gen := s.discards
	seq := s.nextSeqLocked()
	s.mu.Unlock()
	sw, err := s.newSegmentWriter(seq)
	if err != nil {
		s.unfreeze(gen)
		return err
	}
	for _, r := range sortedRecords(frozen, false) {
		if err := sw.add(r); err != nil {
			sw.abort()
			s.unfreeze(gen)
			return err
		}
	}
	seg, err := sw.finish()
	if err != nil {
		s.unfreeze(gen)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = append(s.segs, seg)
	s.imm = nil
	s.stats.Flushes++
	return nil
}

// unfreeze folds the frozen memtable back under the live one after a
// failed flush; entries written during the flush are newer and win,
// and if a DiscardPending ran since the freeze (gen moved on) the
// frozen entries are dropped instead of resurrected.
func (s *Store) unfreeze(gen int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.discards == gen {
		for k, e := range s.imm {
			if _, ok := s.mem[k]; !ok {
				s.mem[k] = e
			}
		}
	}
	s.imm = nil
}

// compact merges the current segments into one via a streaming
// newest-wins merge, reporting whether it committed the manifest. Runs
// with maintMu held (no concurrent flush can change the segment list);
// the merge itself runs against pinned segments with mu released, so
// reads proceed throughout. The manifest commits BEFORE the old
// segment files are deleted — a manifest still referencing the old
// files plus an unreferenced new segment is recoverable after a crash
// (the orphan is swept on Open); a manifest referencing deleted files
// is not. Deletion of a segment still pinned by a snapshot is deferred
// to the snapshot's release. The memtable is not touched (the live
// overlay wins over whatever the segments hold).
func (s *Store) compact() (committed bool, err error) {
	s.mu.Lock()
	if len(s.segs) <= 1 {
		s.mu.Unlock()
		return false, nil
	}
	old := append([]*segment(nil), s.segs...)
	var before int64
	for _, seg := range old {
		seg.refs++ // pin the merge inputs
		before += seg.bytes
	}
	seq := s.nextSeqLocked()
	s.mu.Unlock()
	sw, err := s.newSegmentWriter(seq)
	if err != nil {
		s.unpin(old)
		return false, err
	}
	err = mergeRecords(old, nil, func(r record) error {
		if r.tomb {
			return nil // fully merged: tombstones have done their work
		}
		return sw.add(r)
	})
	if err != nil {
		sw.abort()
		s.unpin(old)
		return false, err
	}
	seg, err := sw.finish()
	if err != nil {
		s.unpin(old)
		return false, err
	}
	s.mu.Lock()
	for _, o := range old {
		s.releaseLocked(o)
	}
	// maintMu excludes concurrent flushes, so the segment list is still
	// exactly the compacted prefix; keep any tail defensively.
	tail := s.segs[len(old):]
	s.segs = append([]*segment{seg}, tail...)
	s.stats.Compactions++
	s.stats.CompactedBytes += before - seg.bytes
	s.mu.Unlock()
	merr := s.commitManifest()
	s.mu.Lock()
	defer s.mu.Unlock()
	if merr != nil {
		// The durable manifest still references the old files, so they
		// must stay on disk for recovery — but in-memory the store has
		// already moved on, and once a later commit succeeds nothing in
		// this process will ever delete them. Count them as orphans
		// (the next Open re-sweeps anything the manifest stops
		// referencing) rather than leaking silently.
		for _, o := range old {
			s.dropLocked(o, false)
		}
		s.stats.Orphaned += int64(len(old))
		return false, merr
	}
	for _, o := range old {
		s.dropLocked(o, true)
	}
	return true, nil
}

// unpin releases the transient compaction pins after a failed merge.
func (s *Store) unpin(segs []*segment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range segs {
		s.releaseLocked(seg)
	}
}

// recordSource streams records of one run in key order.
type recordSource interface {
	next() (record, error) // io.EOF at end
}

// sliceRecordSource streams an in-memory sorted record slice.
type sliceRecordSource struct {
	recs []record
	i    int
}

func (r *sliceRecordSource) next() (record, error) {
	if r.i >= len(r.recs) {
		return record{}, io.EOF
	}
	rec := r.recs[r.i]
	r.i++
	return rec, nil
}

// fileRecordSource streams a v1 flat segment file sequentially.
type fileRecordSource struct {
	r       *bufio.Reader
	scratch []byte
}

func (f *fileRecordSource) next() (record, error) {
	rec, _, err := readRecordFrom(f.r, &f.scratch)
	return rec, err
}

// blockRecordSource streams a v2 block segment: blocks are read one at
// a time into a pooled buffer and decoded in place.
type blockRecordSource struct {
	bf   *blockio.File
	bi   int
	buf  *[]byte
	data []byte // undecoded remainder of the current block
}

func (b *blockRecordSource) next() (record, error) {
	for len(b.data) == 0 {
		if b.bi >= b.bf.NumBlocks() {
			return record{}, io.EOF
		}
		if b.buf == nil {
			b.buf = blockio.GetBuf()
		}
		data, err := b.bf.ReadBlock(b.bi, b.buf)
		if err != nil {
			return record{}, err
		}
		b.bi++
		b.data = data
	}
	rec, n, err := decodeRecord(b.data)
	if err != nil {
		return record{}, err
	}
	b.data = b.data[n:]
	return rec, nil
}

func (b *blockRecordSource) release() {
	if b.buf != nil {
		blockio.PutBuf(b.buf)
		b.buf = nil
	}
}

// releaser lets mergeRecords return pooled resources held by a source
// even when the merge stops early on an error.
type releaser interface{ release() }

// mergeRecords k-way merges the overlay (highest priority, may be nil)
// and the segments (newer = higher priority) into one newest-wins
// stream of records in ascending key order. Records for a key that lost
// to a newer version are consumed and dropped. Each segment is read
// through its own section reader (never the shared file offset), so any
// number of merges and point reads run concurrently over the same
// segment files.
func mergeRecords(segs []*segment, overlay []record, fn func(r record) error) error {
	// sources[0] is the overlay; sources[1..] are segments newest first,
	// so the lowest source index holding a key wins.
	sources := make([]recordSource, 0, len(segs)+1)
	sources = append(sources, &sliceRecordSource{recs: overlay})
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i].bf != nil {
			sources = append(sources, &blockRecordSource{bf: segs[i].bf})
			continue
		}
		sr := io.NewSectionReader(segs[i].f, 0, segs[i].bytes)
		sources = append(sources, &fileRecordSource{r: bufio.NewReaderSize(sr, 64<<10)})
	}
	defer func() {
		for _, src := range sources {
			if r, ok := src.(releaser); ok {
				r.release()
			}
		}
	}()
	heads := make([]*record, len(sources))
	advance := func(i int) error {
		rec, err := sources[i].next()
		if err == io.EOF {
			heads[i] = nil
			return nil
		}
		if err != nil {
			return err
		}
		heads[i] = &rec
		return nil
	}
	for i := range sources {
		if err := advance(i); err != nil {
			return err
		}
	}
	for {
		// Find the smallest key; the lowest source index wins ties.
		win := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if win < 0 || h.key < heads[win].key {
				win = i
			}
		}
		if win < 0 {
			return nil
		}
		key := heads[win].key
		if err := fn(*heads[win]); err != nil {
			return err
		}
		// Consume this key from every source.
		for i := range heads {
			for heads[i] != nil && heads[i].key == key {
				if err := advance(i); err != nil {
					return err
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Segment codec. A record frames as:
//
//	uvarint(len(key)) key byte(kind) [uvarint(n) {uvarint(len k) k uvarint(len v) v}*]
//
// kind 0 = tombstone (no pairs follow), 1 = live group.
// ---------------------------------------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func encodeRecord(buf []byte, r record) []byte {
	buf = appendUvarint(buf, uint64(len(r.key)))
	buf = append(buf, r.key...)
	if r.tomb {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendUvarint(buf, uint64(len(r.pairs)))
	for _, p := range r.pairs {
		buf = appendUvarint(buf, uint64(len(p.Key)))
		buf = append(buf, p.Key...)
		buf = appendUvarint(buf, uint64(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf
}

// maxFieldLen bounds any single decoded field, turning a corrupted
// length prefix into an error instead of a huge allocation.
const maxFieldLen = 64 << 20

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readString decodes one length-prefixed field through *scratch — a
// reused buffer that grows to the largest field seen — so a stream
// scan allocates one string per field instead of a string plus a
// throwaway byte slice.
func readString(r *bufio.Reader, scratch *[]byte) (string, int64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, err
	}
	if n > maxFieldLen {
		return "", 0, fmt.Errorf("results: corrupt field length %d", n)
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	b := (*scratch)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return "", 0, fmt.Errorf("results: truncated field: %w", err)
	}
	return string(b), uvarintLen(n) + int64(n), nil
}

// readRecordFrom decodes the next record of a v1 flat segment stream,
// also returning its encoded length (so segment scans can index
// offsets from the single decode pass); io.EOF signals a clean end.
// scratch is the reused field buffer handed to readString.
func readRecordFrom(r *bufio.Reader, scratch *[]byte) (record, int64, error) {
	key, sz, err := readString(r, scratch)
	if err != nil {
		if err == io.EOF {
			return record{}, 0, io.EOF
		}
		return record{}, 0, fmt.Errorf("results: corrupt record key: %w", err)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return record{}, 0, fmt.Errorf("results: truncated record kind: %w", err)
	}
	sz++
	switch kind {
	case 0:
		return record{key: key, tomb: true}, sz, nil
	case 1:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return record{}, 0, fmt.Errorf("results: corrupt pair count: %w", err)
		}
		if n > maxFieldLen {
			return record{}, 0, fmt.Errorf("results: corrupt pair count %d", n)
		}
		sz += uvarintLen(n)
		pairs := make([]kv.Pair, 0, n)
		for i := uint64(0); i < n; i++ {
			k, kn, err := readString(r, scratch)
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair key: %w", err)
			}
			v, vn, err := readString(r, scratch)
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair value: %w", err)
			}
			sz += kn + vn
			pairs = append(pairs, kv.Pair{Key: k, Value: v})
		}
		return record{key: key, pairs: pairs}, sz, nil
	default:
		return record{}, 0, fmt.Errorf("results: invalid record kind %d", kind)
	}
}

// splitField splits one length-prefixed field off the front of buf,
// returning the field (aliasing buf — zero copy) and the bytes
// consumed.
func splitField(buf []byte) ([]byte, int, error) {
	n, un := binary.Uvarint(buf)
	if un <= 0 {
		return nil, 0, errors.New("results: corrupt length prefix")
	}
	if n > maxFieldLen {
		return nil, 0, fmt.Errorf("results: corrupt field length %d", n)
	}
	end := un + int(n)
	if end > len(buf) {
		return nil, 0, errors.New("results: truncated field")
	}
	return buf[un:end], end, nil
}

// peekRecord parses the record at the front of a decoded block without
// materializing anything: the returned key aliases buf and n is the
// record's encoded length. The zero-allocation form of decodeRecord,
// used to skip past records a point lookup is not interested in.
func peekRecord(buf []byte) (key []byte, n int, err error) {
	key, n, err = splitField(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("results: corrupt record key: %w", err)
	}
	if n >= len(buf) {
		return nil, 0, errors.New("results: truncated record kind")
	}
	kind := buf[n]
	n++
	switch kind {
	case 0:
		return key, n, nil
	case 1:
		np, un := binary.Uvarint(buf[n:])
		if un <= 0 || np > maxFieldLen {
			return nil, 0, errors.New("results: corrupt pair count")
		}
		n += un
		for i := uint64(0); i < 2*np; i++ {
			_, fn, err := splitField(buf[n:])
			if err != nil {
				return nil, 0, fmt.Errorf("results: corrupt pair field: %w", err)
			}
			n += fn
		}
		return key, n, nil
	default:
		return nil, 0, fmt.Errorf("results: invalid record kind %d", kind)
	}
}

// decodeRecord materializes the record at the front of a decoded
// block, returning its encoded length. Strings are copied out; nothing
// in the result aliases buf (which is typically a pooled block buffer
// about to be recycled).
func decodeRecord(buf []byte) (record, int, error) {
	key, n, err := splitField(buf)
	if err != nil {
		return record{}, 0, fmt.Errorf("results: corrupt record key: %w", err)
	}
	if n >= len(buf) {
		return record{}, 0, errors.New("results: truncated record kind")
	}
	kind := buf[n]
	n++
	switch kind {
	case 0:
		return record{key: string(key), tomb: true}, n, nil
	case 1:
		np, un := binary.Uvarint(buf[n:])
		if un <= 0 || np > maxFieldLen {
			return record{}, 0, errors.New("results: corrupt pair count")
		}
		n += un
		pairs := make([]kv.Pair, 0, np)
		for i := uint64(0); i < np; i++ {
			k, kn, err := splitField(buf[n:])
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair key: %w", err)
			}
			n += kn
			v, vn, err := splitField(buf[n:])
			if err != nil {
				return record{}, 0, fmt.Errorf("results: corrupt pair value: %w", err)
			}
			n += vn
			pairs = append(pairs, kv.Pair{Key: string(k), Value: string(v)})
		}
		return record{key: string(key), pairs: pairs}, n, nil
	default:
		return record{}, 0, fmt.Errorf("results: invalid record kind %d", kind)
	}
}

// findInBlock scans a decoded block for key. Records the scan skips
// cost zero allocations (peekRecord aliases the block buffer); only a
// match is materialized. Records are key-sorted, so the scan stops at
// the first key past the target.
func findInBlock(data []byte, key string) (record, bool, error) {
	for len(data) > 0 {
		k, n, err := peekRecord(data)
		if err != nil {
			return record{}, false, err
		}
		if string(k) == key { // comparison only — does not allocate
			rec, _, err := decodeRecord(data)
			if err != nil {
				return record{}, false, err
			}
			return rec, true, nil
		}
		if string(k) > key {
			return record{}, false, nil
		}
		data = data[n:]
	}
	return record{}, false, nil
}

// segmentWriter streams records (sorted by key) into a new v2 block
// segment file; blockio builds the sparse index and bloom filter.
type segmentWriter struct {
	path  string
	f     *os.File
	bw    *blockio.Writer
	buf   []byte
	stats *blockio.FileStats // attached to the finished file's reader
}

// nextSeqLocked reserves the next segment sequence number. Callers
// hold s.mu; the file itself is created off-lock by newSegmentWriter.
func (s *Store) nextSeqLocked() int64 {
	s.seq++
	return s.seq
}

// newSegmentWriter opens the segment file for the reserved sequence
// number. The manifest is NOT updated — callers commit it after every
// structural change. Runs without s.mu (file creation is I/O).
func (s *Store) newSegmentWriter(seq int64) (*segmentWriter, error) {
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("seg-%06d.seg", seq))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw, err := blockio.NewWriter(f, s.blockOpts)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &segmentWriter{path: path, f: f, bw: bw, stats: &s.fileStats}, nil
}

// add appends one record.
func (sw *segmentWriter) add(r record) error {
	sw.buf = encodeRecord(sw.buf[:0], r)
	return sw.bw.Append(r.key, sw.buf)
}

// finish writes the footer, fsyncs the file, and returns the segment
// ready for reads. On error the file is removed.
func (sw *segmentWriter) finish() (*segment, error) {
	bf, err := sw.bw.Finish()
	if err != nil {
		sw.abort()
		return nil, err
	}
	bf.SetStats(sw.stats)
	return &segment{path: sw.path, f: sw.f, bf: bf, bytes: bf.Size()}, nil
}

// abort discards the partially written file.
func (sw *segmentWriter) abort() {
	//i2vet:allow errclose abort path: the partial segment file is removed on the next line
	sw.f.Close()
	os.Remove(sw.path)
}

// openSegment opens an existing segment of either format: a v2 block
// file's footer is parsed directly; a legacy v1 flat file (no block
// magic) gets its in-memory index rebuilt with one sequential scan.
func (s *Store) openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("results: opening segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("results: opening segment: %w", err)
	}
	bf, err := blockio.Open(f, fi.Size())
	if err == nil {
		bf.SetStats(&s.fileStats)
		return &segment{path: path, f: f, bf: bf, bytes: fi.Size()}, nil
	}
	if !errors.Is(err, blockio.ErrNotBlockFile) {
		f.Close()
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	// v1 flat segment.
	index := make(map[string]segLoc)
	r := bufio.NewReaderSize(f, 64<<10)
	var off int64
	var scratch []byte
	for {
		rec, n, err := readRecordFrom(r, &scratch)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("results: %s: %w", path, err)
		}
		index[rec.key] = segLoc{off: off, len: n}
		off += n
	}
	return &segment{path: path, f: f, index: index, bytes: off}, nil
}

// readRecord decodes the v1 record at l. Uses ReadAt, so any number of
// concurrent readers share the segment file safely.
func (seg *segment) readRecord(l segLoc) (record, error) {
	buf := make([]byte, l.len)
	if _, err := seg.f.ReadAt(buf, l.off); err != nil {
		return record{}, fmt.Errorf("results: segment read: %w", err)
	}
	rec, _, err := decodeRecord(buf)
	return rec, err
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

// commitManifest persists the segment list, sequence counter, and last
// materialized output path atomically and durably. Callers hold
// maintMu (which serializes every manifest writer) but NOT mu: the
// bytes are assembled under the read lock, the fsync + rename runs off
// it, so readers never stall behind a manifest commit.
func (s *Store) commitManifest() error {
	s.mu.Lock()
	var b bytes.Buffer
	fmt.Fprintf(&b, "results v1\nseq=%d\nlast=%s\n", s.seq, s.lastOutput)
	for _, seg := range s.segs {
		fmt.Fprintf(&b, "seg=%s\n", filepath.Base(seg.path))
	}
	s.mu.Unlock()
	return fsutil.WriteFileAtomic(filepath.Join(s.opts.Dir, manifestName), b.Bytes())
}

// readManifest loads the manifest; ok=false when none exists (a fresh
// store).
func readManifest(dir string) (segs []string, last string, seq int64, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, "", 0, false, nil
	}
	if err != nil {
		return nil, "", 0, false, err
	}
	lines := strings.Split(string(b), "\n")
	if len(lines) == 0 || lines[0] != "results v1" {
		return nil, "", 0, false, fmt.Errorf("results: corrupt manifest header %q", string(b))
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "=")
		if !found {
			return nil, "", 0, false, fmt.Errorf("results: corrupt manifest line %q", line)
		}
		switch k {
		case "seq":
			if _, err := fmt.Sscanf(v, "%d", &seq); err != nil {
				return nil, "", 0, false, fmt.Errorf("results: corrupt manifest seq %q", v)
			}
		case "last":
			last = v
		case "seg":
			if v == "" || strings.ContainsAny(v, "/\\") {
				return nil, "", 0, false, fmt.Errorf("results: corrupt manifest segment %q", v)
			}
			segs = append(segs, v)
		default:
			return nil, "", 0, false, fmt.Errorf("results: unknown manifest key %q", k)
		}
	}
	return segs, last, seq, true, nil
}
