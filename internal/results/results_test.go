package results

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"i2mapreduce/internal/kv"
)

func mustOpen(t *testing.T, dir string, compact int) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, CompactThreshold: compact})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func collect(t *testing.T, s *Store) map[string][]kv.Pair {
	t.Helper()
	out := make(map[string][]kv.Pair)
	err := s.AllGroups(func(key string, pairs []kv.Pair) error {
		out[key] = append([]kv.Pair(nil), pairs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSetGetDeleteInMemory(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	defer s.Close()
	if s.Initialized() {
		t.Fatal("fresh store reports Initialized")
	}
	s.Set("a", []kv.Pair{{Key: "a", Value: "1"}})
	s.Set("b", []kv.Pair{{Key: "b", Value: "2"}, {Key: "b2", Value: "3"}})
	if ps, ok, _ := s.Get("b"); !ok || len(ps) != 2 {
		t.Fatalf("Get(b) = %v %v", ps, ok)
	}
	s.Delete("a")
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("deleted group still live")
	}
	got := collect(t, s)
	if len(got) != 1 || got["b"] == nil {
		t.Fatalf("AllGroups = %v", got)
	}
	if !s.Dirty() {
		t.Fatal("mutated store not dirty")
	}
}

func TestCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	s.Set("x", []kv.Pair{{Key: "x", Value: "10"}})
	s.Set("y", []kv.Pair{{Key: "y", Value: "20"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second generation overwrites x, deletes y, adds z.
	s.Set("x", []kv.Pair{{Key: "x", Value: "11"}})
	s.Delete("y")
	s.Set("z", []kv.Pair{{Key: "z", Value: "30"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Materialized("out/part-0"); err != nil {
		t.Fatal(err)
	}
	want := collect(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, -1)
	defer r.Close()
	if !r.Initialized() {
		t.Fatal("checkpointed store not Initialized on reopen")
	}
	if r.Dirty() {
		t.Fatal("reopened store dirty")
	}
	if lp := r.LastOutput(); lp != "out/part-0" {
		t.Fatalf("LastOutput = %q", lp)
	}
	got := collect(t, r)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened groups = %v, want %v", got, want)
	}
	if _, ok, _ := r.Get("y"); ok {
		t.Fatal("tombstoned group resurrected on reopen")
	}
	if ps, ok, _ := r.Get("x"); !ok || ps[0].Value != "11" {
		t.Fatalf("Get(x) = %v %v, want newest version", ps, ok)
	}
	if r.Stats().Segments != 2 {
		t.Fatalf("segments = %d, want 2", r.Stats().Segments)
	}
}

func TestThresholdCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 3)
	defer s.Close()
	for gen := 0; gen < 3; gen++ {
		s.Set("k", []kv.Pair{{Key: "k", Value: string(rune('a' + gen))}})
		s.Set("dead", []kv.Pair{{Key: "dead", Value: "x"}})
		s.Delete("dead")
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", st.Compactions)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after compaction = %d, want 1", st.Segments)
	}
	got := collect(t, s)
	if len(got) != 1 || got["k"][0].Value != "c" {
		t.Fatalf("post-compaction groups = %v", got)
	}
	// The compacted segment must not contain the tombstone.
	if _, ok, _ := s.Get("dead"); ok {
		t.Fatal("tombstoned group survived compaction")
	}
}

func TestOrphanSegmentCleanup(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	s.Set("a", []kv.Pair{{Key: "a", Value: "1"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash between segment write and manifest commit.
	orphan := filepath.Join(dir, "seg-999999.seg")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, -1)
	defer r.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment not cleaned up on open")
	}
	got := collect(t, r)
	if len(got) != 1 {
		t.Fatalf("groups after cleanup = %v", got)
	}
}

func TestAllGroupsSortedAndDeterministic(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	defer s.Close()
	keys := []string{"m", "b", "zz", "a", "q"}
	for _, k := range keys {
		s.Set(k, []kv.Pair{{Key: k, Value: "v"}})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Set("c", []kv.Pair{{Key: "c", Value: "v"}}) // memtable overlay
	var order []string
	err := s.AllGroups(func(key string, _ []kv.Pair) error {
		order = append(order, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "m", "q", "zz"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("group order = %v, want %v", order, want)
	}
}

func TestCheckpointEmptyMarksInitialized(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := mustOpen(t, dir, 0)
	defer r.Close()
	if !r.Initialized() {
		t.Fatal("empty checkpointed store not Initialized")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}
