package results

// Background compaction scheduler: moves threshold compaction off the
// checkpoint critical path. A Store with a Scheduler attached no longer
// compacts inline during Checkpoint — a refresh pays only the memtable
// flush and the manifest commit — and instead notifies the scheduler,
// whose bounded workers run the snapshot-isolated Compact when the
// store's segment shape crosses a trigger (segment count, or total
// segment bytes). Engines bracket refreshes with Pause/Resume so a
// compaction merge never competes with refresh I/O, and Close shuts the
// workers down cleanly before the stores themselves close.
//
// Crash consistency is unchanged: Compact commits its manifest before
// deleting folded segments, exactly as the inline path did, so a crash
// at any point leaves either the old manifest (new segment swept as an
// orphan on Open) or the new one. Deferring compaction only ever leaves
// *more* segments on disk, never fewer.

import (
	"sync"
	"sync/atomic"
)

// SchedulerOptions configures a Scheduler.
type SchedulerOptions struct {
	// Workers bounds how many compactions run concurrently. <= 0 means 2
	// (compaction is heavyweight sequential I/O; a small bound keeps it
	// from competing with itself).
	Workers int
	// SegmentBytes, when > 0, additionally triggers a compaction when a
	// store's total segment bytes reach it, even below the store's
	// segment-count threshold.
	SegmentBytes int64
}

// Scheduler runs store compactions on background workers. All methods
// are safe for concurrent use and safe on a nil receiver (no-ops), so
// engine code can hold one optional pointer and call it unconditionally.
type Scheduler struct {
	opts SchedulerOptions

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Store
	pending  map[*Store]bool // dedup: stores currently in queue
	inflight int
	paused   bool
	closed   bool
	firstErr error
	wg       sync.WaitGroup

	runs  atomic.Int64
	fails atomic.Int64
}

// NewScheduler starts the workers.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	s := &Scheduler{opts: opts, pending: make(map[*Store]bool)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		//i2vet:allow rawgo long-lived compaction worker pool bounded by Workers, not a per-partition fan-out
		go s.worker()
	}
	return s
}

// Notify tells the scheduler st's shape may have changed (a Checkpoint
// flushed a segment). The store is enqueued if its compaction trigger
// has fired and it is not already queued; workers re-check the trigger
// at pickup, so spurious notifications are cheap.
func (s *Scheduler) Notify(st *Store) {
	if s == nil || st == nil || !st.CompactDue(s.opts.SegmentBytes) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pending[st] {
		return
	}
	s.pending[st] = true
	s.queue = append(s.queue, st)
	s.cond.Broadcast()
}

// Pause stops workers from starting new compactions and waits out any
// in flight — the refresh barrier: once Pause returns, no background
// compaction I/O runs until Resume. Notifications still enqueue.
func (s *Scheduler) Pause() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = true
	for s.inflight > 0 {
		s.cond.Wait()
	}
}

// Resume lets workers drain the queue again.
func (s *Scheduler) Resume() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = false
	s.cond.Broadcast()
}

// Close shuts the workers down and waits for them: any compaction in
// flight finishes (its store must stay open under it), queued-but-not-
// started work is dropped — the segments just stay on disk, to be
// compacted by a later run. Returns the first background compaction
// error, if any. Idempotent.
func (s *Scheduler) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// QueueDepth is the number of stores enqueued or being compacted right
// now — the "compact.queue.depth" gauge.
func (s *Scheduler) QueueDepth() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.queue) + s.inflight)
}

// Runs is the cumulative count of compactions the workers completed —
// the "compact.bg.runs" counter.
func (s *Scheduler) Runs() int64 {
	if s == nil {
		return 0
	}
	return s.runs.Load()
}

// Failures is the cumulative count of background compactions that
// returned an error (the first error is also returned by Close).
func (s *Scheduler) Failures() int64 {
	if s == nil {
		return 0
	}
	return s.fails.Load()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.paused || len(s.queue) == 0) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		st := s.queue[0]
		s.queue = s.queue[1:]
		delete(s.pending, st)
		s.inflight++
		s.mu.Unlock()

		// Re-check at pickup: the trigger may have been satisfied by a
		// compaction that ran between Notify and now.
		if st.CompactDue(s.opts.SegmentBytes) {
			if err := st.Compact(); err != nil {
				s.fails.Add(1)
				s.mu.Lock()
				if s.firstErr == nil {
					s.firstErr = err
				}
				s.mu.Unlock()
			} else {
				s.runs.Add(1)
			}
		}

		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 {
			s.cond.Broadcast() // wake a Pause waiting out the barrier
		}
		s.mu.Unlock()
	}
}
