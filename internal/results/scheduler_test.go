package results

// Race coverage for the background compaction scheduler: bounded
// workers run snapshot-isolated compactions while concurrent readers
// hold snapshots over the same segments and a simulated refresh keeps
// checkpointing new segments behind the Pause/Resume barrier. Run with
// -race (CI's full-module race job does).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"i2mapreduce/internal/kv"
)

// drainScheduler waits (bounded) for the scheduler's queue to empty.
func drainScheduler(t *testing.T, sched *Scheduler) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sched.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler queue did not drain (depth=%d)", sched.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerCompactsWhenDue covers the basic contract: a store with
// a scheduler attached stops compacting inline during Checkpoint, and
// the background worker folds the segments once notified.
func TestSchedulerCompactsWhenDue(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2)
	defer s.Close()
	sched := NewScheduler(SchedulerOptions{Workers: 1})
	defer sched.Close()
	s.AttachScheduler(sched)

	for i := 0; i < 4; i++ {
		s.Set(fmt.Sprintf("k%d", i), []kv.Pair{{Key: "x", Value: fmt.Sprintf("%d", i)}})
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	drainScheduler(t, sched)
	if sched.Runs() == 0 {
		t.Fatal("background compaction never ran despite segments over threshold")
	}
	if sched.Failures() != 0 {
		t.Fatalf("background compaction failures = %d", sched.Failures())
	}
	if got := len(segFiles(t, dir)); got != 1 {
		t.Fatalf("segment files after background compaction = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		ps, ok, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || ps[0].Value != fmt.Sprintf("%d", i) {
			t.Fatalf("Get(k%d) after background compaction = %v %v %v", i, ps, ok, err)
		}
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
	// All methods are no-ops on a nil receiver: engines hold an optional
	// pointer and call unconditionally.
	var nilSched *Scheduler
	nilSched.Notify(s)
	nilSched.Pause()
	nilSched.Resume()
	if nilSched.QueueDepth() != 0 || nilSched.Runs() != 0 || nilSched.Failures() != 0 || nilSched.Close() != nil {
		t.Fatal("nil scheduler methods are not no-ops")
	}
}

// TestSchedulerBackgroundCompactionUnderConcurrentReaders is the race
// test: snapshot readers iterate and point-read continuously while a
// live refresh loop mutates, checkpoints (enqueueing compactions), and
// brackets itself with the Pause/Resume barrier — background workers
// compact in the gaps. Every byte read must be a value some completed
// round wrote, and the final contents must match the last round.
func TestSchedulerBackgroundCompactionUnderConcurrentReaders(t *testing.T) {
	const groups = 24
	const rounds = 10

	s := mustOpen(t, t.TempDir(), 2)
	defer s.Close()
	sched := NewScheduler(SchedulerOptions{Workers: 2})
	defer sched.Close()
	s.AttachScheduler(sched)

	key := func(i int) string { return fmt.Sprintf("g%03d", i) }
	writeRound := func(round int) {
		for i := 0; i < groups; i++ {
			s.Set(key(i), []kv.Pair{{Key: key(i), Value: fmt.Sprintf("r%d", round)}})
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	writeRound(0)

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				// A snapshot is a point-in-time view. The writer Sets the
				// round's groups one key at a time in ascending key order
				// (the store promises per-key atomicity, not cross-key
				// transactions — round-atomic visibility is the serving
				// layer's epoch flip), so a capture mid-round must see the
				// new round on a prefix of the key order and the previous
				// round on the rest: every group present, at most two
				// rounds visible, adjacent, never interleaved. Anything
				// else — a missing group, a stale third round, r10 after
				// r9 in key order — is a torn capture.
				var rs []int
				err := sn.AllGroups(func(k string, ps []kv.Pair) error {
					var r int
					if _, serr := fmt.Sscanf(ps[0].Value, "r%d", &r); serr != nil {
						return fmt.Errorf("group %s has malformed value %q", k, ps[0].Value)
					}
					rs = append(rs, r)
					return nil
				})
				if err == nil && len(rs) != groups {
					err = fmt.Errorf("torn snapshot: %d groups, want %d", len(rs), groups)
				}
				if err == nil {
					for i := 1; i < len(rs); i++ {
						if d := rs[i-1] - rs[i]; d != 0 && d != 1 {
							err = fmt.Errorf("torn snapshot: rounds %v not a point-in-time prefix", rs)
							break
						}
					}
					if err == nil && rs[0]-rs[len(rs)-1] > 1 {
						err = fmt.Errorf("torn snapshot: rounds %v span more than two rounds", rs)
					}
				}
				if err == nil {
					if _, ok, getErr := sn.Get(key(0)); getErr != nil || !ok {
						err = fmt.Errorf("snapshot Get(%s) = %v %v", key(0), ok, getErr)
					}
				}
				sn.Close()
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}

	for round := 1; round <= rounds; round++ {
		// The refresh barrier: no compaction I/O while the "refresh"
		// mutates and checkpoints; notifications still enqueue.
		sched.Pause()
		writeRound(round)
		sched.Resume()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	drainScheduler(t, sched)
	if sched.Runs() == 0 {
		t.Fatal("background compaction never ran across the refresh loop")
	}
	if sched.Failures() != 0 {
		t.Fatalf("background compaction failures = %d", sched.Failures())
	}
	for i := 0; i < groups; i++ {
		ps, ok, err := s.Get(key(i))
		if err != nil || !ok || ps[0].Value != fmt.Sprintf("r%d", rounds) {
			t.Fatalf("final Get(%s) = %v %v %v, want r%d", key(i), ps, ok, err, rounds)
		}
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerPauseBarrier asserts Pause waits out an in-flight
// compaction and blocks new ones until Resume.
func TestSchedulerPauseBarrier(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 2)
	defer s.Close()
	sched := NewScheduler(SchedulerOptions{Workers: 1})
	defer sched.Close()
	s.AttachScheduler(sched)

	sched.Pause()
	for i := 0; i < 4; i++ {
		s.Set(fmt.Sprintf("k%d", i), []kv.Pair{{Key: "x", Value: "v"}})
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Paused: the notification is queued but no compaction ran.
	if sched.QueueDepth() == 0 {
		t.Fatal("notification not queued while paused")
	}
	time.Sleep(10 * time.Millisecond)
	if sched.Runs() != 0 {
		t.Fatal("compaction ran while paused")
	}
	sched.Resume()
	drainScheduler(t, sched)
	if sched.Runs() == 0 {
		t.Fatal("compaction did not run after Resume")
	}
	// Pause returns only once in-flight work is out: afterwards the
	// segment shape is stable.
	sched.Pause()
	before := len(segFiles(t, dir))
	time.Sleep(5 * time.Millisecond)
	if got := len(segFiles(t, dir)); got != before {
		t.Fatalf("segment files changed under the pause barrier: %d -> %d", before, got)
	}
	sched.Resume()
}
