package results

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"i2mapreduce/internal/kv"
)

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestSnapshotIsolationAcrossMutations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	defer s.Close()
	s.Set("a", []kv.Pair{{Key: "a", Value: "1"}})
	s.Set("b", []kv.Pair{{Key: "b", Value: "2"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Set("c", []kv.Pair{{Key: "c", Value: "pending"}}) // memtable-only at capture

	sn := s.Snapshot()
	defer sn.Close()

	// Mutate, checkpoint, and compact behind the snapshot's back.
	s.Set("a", []kv.Pair{{Key: "a", Value: "new"}})
	s.Delete("b")
	s.Set("d", []kv.Pair{{Key: "d", Value: "late"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	for key, want := range map[string]string{"a": "1", "b": "2", "c": "pending"} {
		ps, ok, err := sn.Get(key)
		if err != nil || !ok || len(ps) != 1 || ps[0].Value != want {
			t.Fatalf("snapshot Get(%q) = %v %v %v, want value %q", key, ps, ok, err, want)
		}
	}
	if _, ok, _ := sn.Get("d"); ok {
		t.Fatal("snapshot sees a group created after capture")
	}
	got := map[string]string{}
	if err := sn.AllGroups(func(k string, ps []kv.Pair) error {
		got[k] = ps[0].Value
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := map[string]string{"a": "1", "b": "2", "c": "pending"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot AllGroups = %v, want %v", got, want)
	}

	// The live store sees the post-mutation state.
	if ps, ok, _ := s.Get("a"); !ok || ps[0].Value != "new" {
		t.Fatalf("store Get(a) = %v %v", ps, ok)
	}
	if _, ok, _ := s.Get("b"); ok {
		t.Fatal("store still sees deleted group")
	}
}

func TestSnapshotPinsSegmentFilesUntilRelease(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Set(fmt.Sprintf("k%d", i), []kv.Pair{{Key: "x", Value: fmt.Sprintf("%d", i)}})
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	before := segFiles(t, dir)
	if len(before) != 3 {
		t.Fatalf("segments before compaction = %v", before)
	}

	sn := s.Snapshot()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pre-compaction files must survive while the snapshot pins
	// them (plus the new compacted segment).
	after := segFiles(t, dir)
	if len(after) != 4 {
		t.Fatalf("segment files during pinned compaction = %v, want the 3 old + 1 new", after)
	}
	// The snapshot still reads the old bytes.
	if ps, ok, err := sn.Get("k0"); err != nil || !ok || ps[0].Value != "0" {
		t.Fatalf("pinned snapshot Get(k0) = %v %v %v", ps, ok, err)
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	released := segFiles(t, dir)
	if len(released) != 1 {
		t.Fatalf("segment files after snapshot release = %v, want only the compacted one", released)
	}
	if sn.Close() != nil {
		t.Fatal("second Close not idempotent")
	}
}

func TestGetReturnsDefensiveCopies(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	defer s.Close()
	s.Set("g", []kv.Pair{{Key: "g", Value: "orig"}})

	ps, ok, err := s.Get("g")
	if err != nil || !ok {
		t.Fatal(ps, ok, err)
	}
	ps[0].Value = "mutated"
	if again, _, _ := s.Get("g"); again[0].Value != "orig" {
		t.Fatalf("caller mutation corrupted the memtable: %v", again)
	}
	// Same through AllGroups (memtable-backed records).
	if err := s.AllGroups(func(k string, aps []kv.Pair) error {
		aps[0].Value = "mutated-again"
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if again, _, _ := s.Get("g"); again[0].Value != "orig" {
		t.Fatalf("AllGroups callback mutation corrupted the memtable: %v", again)
	}
	// And the durable state: checkpoint after the mutations must
	// persist the original value.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if again, _, _ := s.Get("g"); again[0].Value != "orig" {
		t.Fatalf("checkpointed value corrupted: %v", again)
	}
}

func TestMultiGetConsistentBatch(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	defer s.Close()
	s.Set("a", []kv.Pair{{Key: "a", Value: "1"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Set("b", []kv.Pair{{Key: "b", Value: "2"}})
	pairs, found, err := s.MultiGet([]string{"a", "b", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || !found[1] || found[2] {
		t.Fatalf("found = %v", found)
	}
	if pairs[0][0].Value != "1" || pairs[1][0].Value != "2" {
		t.Fatalf("pairs = %v", pairs)
	}
}

// TestOrphanAccountingAndResweep forces segment deletions to fail and
// checks that the failure is surfaced in Stats.Orphaned instead of
// silently swallowed, that the orphan file stays on disk, and that the
// next Open re-sweeps it.
func TestOrphanAccountingAndResweep(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	for i := 0; i < 2; i++ {
		s.Set(fmt.Sprintf("k%d", i), []kv.Pair{{Key: "x", Value: "v"}})
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	removeFile = func(string) error { return errors.New("injected deletion failure") }
	defer func() { removeFile = os.Remove }()

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Orphaned; got != 2 {
		t.Fatalf("Stats.Orphaned after failed deletions = %d, want 2", got)
	}
	if files := segFiles(t, dir); len(files) != 3 {
		t.Fatalf("orphan files not left on disk: %v", files)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open with deletions still failing: the sweep tries and counts.
	s2 := mustOpen(t, dir, -1)
	if got := s2.Stats().Orphaned; got != 2 {
		t.Fatalf("Stats.Orphaned after failed re-sweep = %d, want 2", got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open with deletions working again: the orphans are swept.
	removeFile = os.Remove
	s3 := mustOpen(t, dir, -1)
	defer s3.Close()
	if got := s3.Stats().Orphaned; got != 0 {
		t.Fatalf("Stats.Orphaned after successful re-sweep = %d", got)
	}
	if files := segFiles(t, dir); len(files) != 1 {
		t.Fatalf("orphans not swept on Open: %v", files)
	}
	if ps, ok, err := s3.Get("k0"); err != nil || !ok || ps[0].Value != "v" {
		t.Fatalf("data lost across orphan sweep: %v %v %v", ps, ok, err)
	}
}

// TestConcurrentReadersDuringMaintenance hammers Get / MultiGet /
// AllGroups / snapshots from many goroutines while a writer mutates,
// checkpoints, and compacts. Run under -race this is the store-level
// half of the serving guarantee: readers never block on (or crash
// into) maintenance, and every observed value is one the writer
// actually wrote.
func TestConcurrentReadersDuringMaintenance(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 3)
	defer s.Close()
	const keys = 16
	key := func(i int) string { return fmt.Sprintf("k%02d", i) }
	for i := 0; i < keys; i++ {
		s.Set(key(i), []kv.Pair{{Key: key(i), Value: "v0"}})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					ps, ok, err := s.Get(key(i % keys))
					if err != nil {
						errCh <- err
						return
					}
					if ok && (len(ps) != 1 || !strings.HasPrefix(ps[0].Value, "v")) {
						errCh <- fmt.Errorf("torn read: %v", ps)
						return
					}
				case 1:
					sn := s.Snapshot()
					if err := sn.AllGroups(func(string, []kv.Pair) error { return nil }); err != nil {
						errCh <- err
						sn.Close()
						return
					}
					sn.Close()
				case 2:
					if _, _, err := s.MultiGet([]string{key(i % keys), key((i + 7) % keys)}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(r)
	}

	// Writer: rounds of mutations + checkpoints (threshold 3 triggers
	// compactions), plus explicit compactions and deletes.
	for round := 1; round <= 20; round++ {
		for i := 0; i < keys; i++ {
			if (i+round)%5 == 0 {
				s.Delete(key(i))
			} else {
				s.Set(key(i), []kv.Pair{{Key: key(i), Value: fmt.Sprintf("v%d", round)}})
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if round%4 == 0 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatal("writer never compacted; the test lost its point")
	}
}

// TestSnapshotSurvivesReset: a snapshot captured before Reset keeps
// reading the pre-Reset data; the files go when it is released.
func TestSnapshotSurvivesReset(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	defer s.Close()
	s.Set("a", []kv.Pair{{Key: "a", Value: "1"}})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if ps, ok, err := sn.Get("a"); err != nil || !ok || ps[0].Value != "1" {
		t.Fatalf("snapshot lost pre-Reset data: %v %v %v", ps, ok, err)
	}
	if _, ok, _ := s.Get("a"); ok {
		t.Fatal("store still sees reset data")
	}
	if err := sn.Close(); err != nil {
		t.Fatal(err)
	}
	if files := segFiles(t, dir); len(files) != 0 {
		t.Fatalf("reset segment files survived snapshot release: %v", files)
	}
}
