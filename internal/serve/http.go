package serve

// HTTP/JSON front of the serving layer. The handler is plain net/http
// over the Server's Get/MultiGet/Stats, suitable for mounting on any
// mux or serving standalone (cmd/i2mr-serve).
//
//	GET  /get?key=K            one point lookup
//	GET  /mget?key=A&key=B     batched lookup (repeat key=)
//	POST /mget                 batched lookup, body {"keys":["a","b"]}
//	GET  /stats                server counters (epoch, flips, cache)
//	GET  /healthz              200 "ok" while serving, 503 after Close

import (
	"encoding/json"
	"net/http"

	"i2mapreduce/internal/kv"
)

// HTTPPair is one output pair in a JSON response.
type HTTPPair struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// HTTPValue is one group lookup result.
type HTTPValue struct {
	Key   string     `json:"key"`
	Found bool       `json:"found"`
	Pairs []HTTPPair `json:"pairs,omitempty"`
}

// HTTPGetResponse frames /get.
type HTTPGetResponse struct {
	Epoch int64 `json:"epoch"`
	HTTPValue
}

// HTTPMGetResponse frames /mget.
type HTTPMGetResponse struct {
	Epoch  int64       `json:"epoch"`
	Values []HTTPValue `json:"values"`
}

func httpPairs(ps []kv.Pair) []HTTPPair {
	if len(ps) == 0 {
		return nil
	}
	out := make([]HTTPPair, len(ps))
	for i, p := range ps {
		out[i] = HTTPPair{Key: p.Key, Value: p.Value}
	}
	return out
}

// Handler returns the HTTP front of the server.
func (s *Server) Handler() http.Handler {
	return s.HandlerWith(nil)
}

// HandlerWith returns the HTTP front of the server with extra routes
// mounted on the same mux — how cmd/i2mr-serve mounts the ingestion
// endpoint (POST /ingest) beside /get, /mget, /stats, and /healthz.
// Extra patterns follow net/http ServeMux syntax and must not collide
// with the built-in routes.
func (s *Server) HandlerWith(extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", s.handleGet)
	mux.HandleFunc("/mget", s.handleMGet)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "missing ?key=")
		return
	}
	pairs, found, epochID, err := s.Get(key)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, HTTPGetResponse{
		Epoch:     epochID,
		HTTPValue: HTTPValue{Key: key, Found: found, Pairs: httpPairs(pairs)},
	})
}

// mgetMaxKeys bounds one /mget batch: a runaway client gets an error,
// not an unbounded allocation.
const mgetMaxKeys = 10000

func (s *Server) handleMGet(w http.ResponseWriter, r *http.Request) {
	var keys []string
	switch r.Method {
	case http.MethodGet:
		keys = r.URL.Query()["key"]
	case http.MethodPost:
		var body struct {
			Keys []string `json:"keys"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
			return
		}
		keys = body.Keys
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	if len(keys) == 0 {
		httpError(w, http.StatusBadRequest, "no keys")
		return
	}
	if len(keys) > mgetMaxKeys {
		httpError(w, http.StatusBadRequest, "too many keys")
		return
	}
	pairs, found, epochID, err := s.MultiGet(keys)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp := HTTPMGetResponse{Epoch: epochID, Values: make([]HTTPValue, len(keys))}
	for i, k := range keys {
		resp.Values[i] = HTTPValue{Key: k, Found: found[i], Pairs: httpPairs(pairs[i])}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cur.Load() == nil {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n")) //nolint:errcheck
}
