package serve

import (
	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/plan"
)

// RefreshPlanned runs one planner-dispatched refresh under the server's
// epoch discipline: the planner picks the mode (and CPC threshold), the
// bound engine runs it while readers keep being served from the
// pre-refresh epoch, and on success the server flips atomically to a
// fresh post-refresh epoch and the observed cost is folded back into
// the planner's ledger. The returned Decision records why the mode was
// chosen; on error the current epoch stays in place.
func (s *Server) RefreshPlanned(a *plan.Auto, deltaInput, output string, deltaRecords int64) (*engine.RefreshResult, plan.Decision, error) {
	var (
		res *engine.RefreshResult
		d   plan.Decision
	)
	err := s.Refresh(func() error {
		var err error
		res, d, err = a.Refresh(deltaInput, output, deltaRecords)
		return err
	})
	return res, d, err
}
