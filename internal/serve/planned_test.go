package serve

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"i2mapreduce/internal/engine"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/plan"
)

// TestRefreshPlanned drives the serving layer through the planner: a
// cold ledger falls back to the recompute arm, a warmed ledger picks
// the cheaper one-step refresh, and every planned refresh publishes
// under the same epoch-flip discipline as Server.Refresh.
func TestRefreshPlanned(t *testing.T) {
	eng := newEngine(t, t.TempDir(), 2)
	r := startedRunner(t, eng, "wc-planned")
	defer r.Close()
	srv, err := NewOneStep(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := plan.New(plan.Config{
		Path:  filepath.Join(t.TempDir(), "ledger.json"),
		Modes: []string{engine.ModeOneStep},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The recompute arm also refreshes through RunDelta here — the test
	// cares about dispatch and epoch discipline, not recompute cost.
	recomputes := 0
	auto := &plan.Auto{
		Planner: p,
		Engines: map[string]engine.Refresher{
			engine.ModeRecompute: &engine.Func{
				Mode: engine.ModeRecompute,
				Fn: func(deltaInput, output string) (*metrics.Report, int64, error) {
					recomputes++
					rep, err := r.RunDelta(deltaInput, output)
					if err != nil {
						return nil, 0, err
					}
					return rep, rep.Counter("map.records.in"), nil
				},
			},
			engine.ModeOneStep: r,
		},
	}

	writeTargetDelta := func(path, prefix string, n int) {
		t.Helper()
		ds := make([]kv.Delta, 0, n)
		for i := 0; i < n; i++ {
			ds = append(ds, kv.Delta{
				Key: fmt.Sprintf("%s%04d", prefix, i), Value: "target fresh", Op: kv.OpInsert,
			})
		}
		if err := eng.FS().WriteAllDeltas(path, ds); err != nil {
			t.Fatal(err)
		}
	}

	// Cold ledger: the decision must be the recompute fallback, and the
	// refresh must still flip the epoch and publish the new counts.
	writeTargetDelta("delta1", "p", 10)
	res, d, err := srv.RefreshPlanned(auto, "delta1", "out1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cold || d.Mode != engine.ModeRecompute || res.Mode != engine.ModeRecompute {
		t.Fatalf("cold decision = %+v, result mode %q; want recompute fallback", d, res.Mode)
	}
	if v, epoch := getValue(t, srv, "target"); v != "50" || epoch != 2 {
		t.Fatalf("after cold refresh target = %q at epoch %d, want 50 at 2", v, epoch)
	}
	if recomputes != 1 {
		t.Fatalf("recompute arm ran %d times, want 1", recomputes)
	}

	// Warm both models so one-step is clearly cheaper, then refresh
	// again: the planner must dispatch to the one-step runner.
	for i := 0; i < 3; i++ {
		if err := p.Observe(plan.Observation{Mode: engine.ModeOneStep, DeltaRecords: 10, Wall: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := p.Observe(plan.Observation{Mode: engine.ModeRecompute, DeltaRecords: 10, Wall: time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	writeTargetDelta("delta2", "q", 10)
	res2, d2, err := srv.RefreshPlanned(auto, "delta2", "out2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Cold || d2.Mode != engine.ModeOneStep || res2.Mode != engine.ModeOneStep {
		t.Fatalf("warm decision = %+v, result mode %q; want onestep", d2, res2.Mode)
	}
	if v, epoch := getValue(t, srv, "target"); v != "60" || epoch != 3 {
		t.Fatalf("after warm refresh target = %q at epoch %d, want 60 at 3", v, epoch)
	}
	if recomputes != 1 {
		t.Fatalf("recompute arm ran %d times after warm refresh, want still 1", recomputes)
	}

	// A failing refresh must leave the served epoch in place.
	if _, _, err := srv.RefreshPlanned(auto, "no-such-delta", "out3", 10); err == nil {
		t.Fatal("refresh from a missing delta input succeeded")
	}
	if v, epoch := getValue(t, srv, "target"); v != "60" || epoch != 3 {
		t.Fatalf("after failed refresh target = %q at epoch %d, want 60 at 3", v, epoch)
	}
}
