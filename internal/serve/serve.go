// Package serve is the online serving layer over the durable result
// and state stores: it turns a one-step or incremental-iterative
// computation from a batch artifact into a queryable service.
//
// A Server wraps the per-partition snapshot-capable stores of a running
// (or results.Open-ed) runner and answers point lookups and batched
// MultiGets against refcounted store snapshots (results.Snapshot), so
// reads never block — and are never blocked by — the writers of an
// in-flight refresh. The snapshot set currently being served is an
// *epoch*: while RunDelta / RunIncremental mutates the stores, every
// read keeps seeing the pre-refresh epoch; when the refresh commits
// (its refresh.intent bracket completes and the runner returns),
// Server.Refresh atomically flips to a freshly captured epoch. Readers
// that were in flight across the flip finish on the epoch they started
// on; the old epoch's snapshots are released when its last in-flight
// reader completes, which in turn lets the stores delete compacted-away
// segment files.
//
// Each epoch carries a bounded block cache (results.BlockCache) keyed
// by the identity of the immutable segment blocks lookups touch, so a
// hot block is decoded once per epoch no matter how many distinct keys
// it serves. Because an epoch is immutable, cached blocks can never be
// stale; the cache is dropped wholesale at the flip, which is the
// entire invalidation story.
//
// HTTP endpoints (/get, /mget, /stats, /healthz) are in http.go;
// cmd/i2mr-serve runs a complete serving deployment with live
// background refreshes.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"i2mapreduce/internal/core"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/par"
	"i2mapreduce/internal/results"
)

// SnapshotStore is one partition's snapshot-capable store. Both
// *results.Store (one-step materialized results) and *results.KV
// (incremental-iterative state) implement it.
type SnapshotStore interface {
	Snapshot() *results.Snapshot
}

// DefaultCacheSize is the per-epoch block cache capacity (decoded
// segment blocks) when Options.CacheSize is zero. At the default
// 32 KiB block size this bounds the cache near 8 MiB of decoded data
// per epoch.
const DefaultCacheSize = 256

// Options configures a Server.
type Options struct {
	// Partition routes a group key to its owning store. Defaults to
	// kv.Partition — the engine-wide hash every runner places reduce
	// groups and state keys with. Override only for jobs that ran with
	// a custom mr.Job.Partition.
	Partition func(key string, n int) int
	// CacheSize bounds the per-epoch block cache (decoded segment
	// blocks). 0 means DefaultCacheSize; negative disables caching.
	CacheSize int
}

// Server serves point lookups over a set of per-partition stores with
// epoch-snapshot isolation. Safe for concurrent use.
type Server struct {
	stores    []SnapshotStore
	part      func(key string, n int) int
	cacheSize int

	cur atomic.Pointer[epoch]
	// refreshMu serializes Refresh and Flip: one refresh at a time, and
	// a flip can never interleave with the refresh it publishes.
	refreshMu  sync.Mutex
	refreshing atomic.Bool

	flips       atomic.Int64
	snapsOpen   atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// sched, when attached, surfaces the runner's background compaction
	// scheduler gauges in /stats. Nil (and all gauges zero) unless the
	// runner was built with background compaction on.
	sched atomic.Pointer[results.Scheduler]

	// freshness, when attached, surfaces the ingestion pipeline's
	// watermark/freshness view in /stats. Nil unless an Ingester is
	// bound to this server (AttachFreshness).
	freshness atomic.Pointer[func() Freshness]
}

// epoch is one immutable generation of store snapshots plus its cache.
// refs counts in-flight readers plus one reference held by the Server
// while the epoch is current; the snapshots are released when the count
// reaches zero.
type epoch struct {
	id    int64
	snaps []*results.Snapshot
	cache *results.BlockCache
	refs  atomic.Int64
	// released makes the zero-crossing close idempotent: a reader that
	// pinned the epoch in the instant a flip dropped it to zero (see
	// acquire's retry loop) crosses zero a second time on its release.
	released atomic.Bool
	srv      *Server
}

// NewServer builds a Server over one store per partition and captures
// the first epoch. The caller keeps ownership of the stores (and of the
// runner behind them); Close the Server before closing them.
func NewServer(stores []SnapshotStore, opts Options) (*Server, error) {
	if len(stores) == 0 {
		return nil, errors.New("serve: no stores")
	}
	part := opts.Partition
	if part == nil {
		part = kv.Partition
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	s := &Server{stores: stores, part: part, cacheSize: size}
	s.cur.Store(s.newEpoch(1))
	return s, nil
}

// NewOneStep builds a Server over a one-step runner's durable
// per-partition result stores. Group keys are the Reduce input keys K2
// (K3 for accumulator jobs); each group's value is the output pairs its
// Reduce call emitted.
func NewOneStep(r *incr.Runner, opts Options) (*Server, error) {
	res := r.Results()
	stores := make([]SnapshotStore, len(res))
	for i, st := range res {
		stores[i] = st
	}
	srv, err := NewServer(stores, opts)
	if err != nil {
		return nil, err
	}
	srv.AttachCompactionScheduler(r.CompactionScheduler())
	return srv, nil
}

// NewIncremental builds a Server over the incremental iterative
// runner's durable per-partition state stores. Keys are state keys DK;
// each group holds a single pair whose Value is the state value (the
// results.KV encoding), so Get returns one pair with an empty pair key.
func NewIncremental(r *core.Runner, opts Options) (*Server, error) {
	kvs := r.StateStores()
	stores := make([]SnapshotStore, len(kvs))
	for i, st := range kvs {
		stores[i] = st
	}
	srv, err := NewServer(stores, opts)
	if err != nil {
		return nil, err
	}
	srv.AttachCompactionScheduler(r.CompactionScheduler())
	return srv, nil
}

// newEpoch captures a fresh snapshot of every store.
func (s *Server) newEpoch(id int64) *epoch {
	snaps := make([]*results.Snapshot, len(s.stores))
	for i, st := range s.stores {
		snaps[i] = st.Snapshot()
	}
	e := &epoch{id: id, snaps: snaps, cache: results.NewBlockCache(s.cacheSize), srv: s}
	e.refs.Store(1)
	s.snapsOpen.Add(int64(len(snaps)))
	return e
}

// acquire pins the current epoch for one read. The retry loop closes
// the race with a concurrent flip: a reference taken on an epoch that
// was swapped out before the pin landed is dropped and the new current
// epoch pinned instead.
func (s *Server) acquire() (*epoch, error) {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil, errors.New("serve: server is closed")
		}
		e.refs.Add(1)
		if s.cur.Load() == e {
			return e, nil
		}
		e.release()
	}
}

// release drops one epoch reference, closing the snapshots at zero.
func (e *epoch) release() {
	if e.refs.Add(-1) == 0 && e.released.CompareAndSwap(false, true) {
		for _, sn := range e.snaps {
			sn.Close()
		}
		e.srv.snapsOpen.Add(-int64(len(e.snaps)))
	}
}

// get answers one lookup through the epoch's block cache. A hit means
// the answer came out of an already-decoded cached block — including
// for keys never looked up before, when a neighbour's lookup pulled
// their block in.
func (e *epoch) get(key string, p int) ([]kv.Pair, bool, error) {
	ps, found, fromCache, err := e.snaps[p].GetCached(key, e.cache)
	if err != nil {
		return nil, false, err
	}
	if fromCache {
		e.srv.cacheHits.Add(1)
	} else {
		e.srv.cacheMisses.Add(1)
	}
	return ps, found, nil
}

// Epoch returns the id of the epoch currently being served.
func (s *Server) Epoch() int64 {
	if e := s.cur.Load(); e != nil {
		return e.id
	}
	return 0
}

// Get answers one point lookup against the current epoch, returning the
// group's pairs, whether it exists, and the epoch id the read was
// served from.
func (s *Server) Get(key string) (pairs []kv.Pair, found bool, epochID int64, err error) {
	e, err := s.acquire()
	if err != nil {
		return nil, false, 0, err
	}
	defer e.release()
	pairs, found, err = e.get(key, s.part(key, len(s.stores)))
	return pairs, found, e.id, err
}

// MultiGet answers a batch of point lookups against one consistent
// epoch: pairs[i], found[i] correspond to keys[i]. The batch is grouped
// by owning partition and fanned out across the per-partition snapshots
// concurrently.
func (s *Server) MultiGet(keys []string) (pairs [][]kv.Pair, found []bool, epochID int64, err error) {
	e, err := s.acquire()
	if err != nil {
		return nil, nil, 0, err
	}
	defer e.release()
	pairs = make([][]kv.Pair, len(keys))
	found = make([]bool, len(keys))
	byPart := make(map[int][]int)
	for i, k := range keys {
		p := s.part(k, len(s.stores))
		byPart[p] = append(byPart[p], i)
	}
	// Fan out across the owning partitions through par.Do: bounded
	// workers and a deterministic lowest-partition error, instead of the
	// old hand-rolled goroutine-per-partition whose reported error
	// depended on scheduling.
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	err = par.Do(len(parts), 0, func(pi int) error {
		p := parts[pi]
		for _, i := range byPart[p] {
			ps, ok, err := e.get(keys[i], p)
			if err != nil {
				return err
			}
			pairs[i], found[i] = ps, ok
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return pairs, found, e.id, nil
}

// Refresh runs fn — a RunDelta / RunIncremental call — and, when it
// succeeds, atomically flips readers to a fresh post-refresh epoch. For
// the whole duration of fn every read keeps being served from the
// pre-refresh epoch's snapshots; the refresh's store mutations become
// visible all at once at the flip. One refresh runs at a time. On error
// the current epoch stays in place (the runner's own intent bracket
// guarantees the durable stores are either rolled forward or refused at
// the next Open).
func (s *Server) Refresh(fn func() error) error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	s.refreshing.Store(true)
	defer s.refreshing.Store(false)
	if err := fn(); err != nil {
		return err
	}
	return s.flipLocked()
}

// Flip re-snapshots every store and atomically publishes the new epoch.
// Use it after mutating the stores outside Refresh (e.g. an out-of-band
// Compact whose space reclamation should unpin old segments).
func (s *Server) Flip() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.flipLocked()
}

func (s *Server) flipLocked() error {
	old := s.cur.Load()
	if old == nil {
		return errors.New("serve: server is closed")
	}
	ne := s.newEpoch(old.id + 1)
	s.cur.Store(ne)
	s.flips.Add(1)
	old.release() // drop the server's reference; in-flight readers keep theirs
	return nil
}

// Close stops serving: subsequent reads fail, and the current epoch's
// snapshots are released once its in-flight readers drain. The
// underlying stores stay open (the runner owns them).
func (s *Server) Close() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if e := s.cur.Swap(nil); e != nil {
		e.release()
	}
	return nil
}

// AttachCompactionScheduler surfaces a background compaction scheduler's
// gauges (queue depth, completed runs, failures) in Stats and /stats.
// Call it with the scheduler of the runner whose stores this Server
// serves; nil detaches. Safe to call while serving.
func (s *Server) AttachCompactionScheduler(sched *results.Scheduler) {
	s.sched.Store(sched)
}

// Freshness is the ingestion pipeline's watermark/freshness view as
// embedded in Stats and /stats: how far ingestion has progressed
// (StagedSeq), how far refreshes have caught up (AppliedSeq), and how
// stale the served epoch is relative to accepted records (LagNS).
type Freshness struct {
	// StagedSeq is the last ingest sequence number durably accepted
	// into the staging log; AppliedSeq is the last-applied watermark —
	// every record up to it is reflected in the served epoch.
	StagedSeq  int64 `json:"staged_seq"`
	AppliedSeq int64 `json:"applied_seq"`
	// PendingRecords / PendingBytes are the staging depth: accepted
	// records not yet applied by a refresh (the backpressure gauge).
	PendingRecords int64 `json:"pending_records"`
	PendingBytes   int64 `json:"pending_bytes"`
	// Records / Batches / Rejected / Replayed are cumulative ingestion
	// counters: accepted records, applied micro-batches, records
	// refused with backpressure, and records recovered from the staging
	// log after a restart.
	Records  int64 `json:"records"`
	Batches  int64 `json:"batches"`
	Rejected int64 `json:"rejected"`
	Replayed int64 `json:"replayed"`
	// LagNS is the freshness lag: the age in nanoseconds of the oldest
	// accepted-but-unapplied record (0 when fully drained).
	LagNS int64 `json:"lag_ns"`
}

// AttachFreshness surfaces an ingestion pipeline's watermark/freshness
// view in Stats and /stats. The callback is invoked per Stats call;
// nil detaches. Safe to call while serving.
func (s *Server) AttachFreshness(f func() Freshness) {
	if f == nil {
		s.freshness.Store(nil)
		return
	}
	s.freshness.Store(&f)
}

// Stats is a point-in-time view of the server's counters.
type Stats struct {
	Epoch         int64 `json:"epoch"`
	Partitions    int   `json:"partitions"`
	EpochFlips    int64 `json:"epoch_flips"`
	SnapshotsOpen int64 `json:"snapshots_open"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	Refreshing    bool  `json:"refreshing"`
	// Background compaction scheduler gauges; all zero when the runner
	// compacts inline (no scheduler attached).
	CompactQueueDepth int64 `json:"compact_queue_depth"`
	CompactBGRuns     int64 `json:"compact_bg_runs"`
	CompactBGFailures int64 `json:"compact_bg_failures"`
	// Ingest is the ingestion freshness view; nil unless an Ingester is
	// attached (AttachFreshness).
	Ingest *Freshness `json:"ingest,omitempty"`
}

// Stats returns the server's current counters.
func (s *Server) Stats() Stats {
	sched := s.sched.Load() // nil-safe: gauges read as zero
	st := Stats{
		Epoch:             s.Epoch(),
		Partitions:        len(s.stores),
		EpochFlips:        s.flips.Load(),
		SnapshotsOpen:     s.snapsOpen.Load(),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.cacheMisses.Load(),
		Refreshing:        s.refreshing.Load(),
		CompactQueueDepth: sched.QueueDepth(),
		CompactBGRuns:     sched.Runs(),
		CompactBGFailures: sched.Failures(),
	}
	if f := s.freshness.Load(); f != nil {
		fr := (*f)()
		st.Ingest = &fr
	}
	return st
}

// AddTo records the server's counters into a metrics report under the
// shared counter names.
func (s *Server) AddTo(rep *metrics.Report) {
	st := s.Stats()
	rep.Add(metrics.CounterServeEpochFlips, st.EpochFlips)
	rep.Add(metrics.CounterServeSnapshotsOpen, st.SnapshotsOpen)
	rep.Add(metrics.CounterServeCacheHits, st.CacheHits)
	rep.Add(metrics.CounterServeCacheMisses, st.CacheMisses)
	rep.Add(metrics.CounterCompactQueueDepth, st.CompactQueueDepth)
	rep.Add(metrics.CounterCompactBGRuns, st.CompactBGRuns)
	if st.Ingest != nil {
		rep.Add(metrics.CounterIngestRecords, st.Ingest.Records)
		rep.Add(metrics.CounterIngestBatches, st.Ingest.Batches)
		rep.Add(metrics.CounterIngestRejected, st.Ingest.Rejected)
		rep.Add(metrics.CounterIngestReplayed, st.Ingest.Replayed)
		rep.Add(metrics.CounterFreshnessLagNS, st.Ingest.LagNS)
	}
}

// String names the server for logs.
func (s *Server) String() string {
	return fmt.Sprintf("serve.Server(%d partitions, epoch %d)", len(s.stores), s.Epoch())
}
