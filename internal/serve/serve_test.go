package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/core"
	"i2mapreduce/internal/dfs"
	"i2mapreduce/internal/incr"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/mr"
)

// newEngine builds a simulated engine rooted at root (pass the same
// root twice to simulate a process restart over preserved state).
func newEngine(t *testing.T, root string, nodes int) *mr.Engine {
	t.Helper()
	fs, err := dfs.New(dfs.Config{Root: root + "/dfs", BlockSize: 1024, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Nodes: nodes, SlotsPerNode: 2, ScratchRoot: root + "/scratch"})
	if err != nil {
		t.Fatal(err)
	}
	return mr.NewEngine(fs, cl)
}

func wordCountJob(name string) incr.Job {
	job := apps.FineGrainWordCountJob(name)
	job.NumReducers = 2
	return job
}

// docsFor builds a corpus where the word "target" appears exactly n
// times (plus filler words spreading groups across partitions).
func docsFor(n int) []kv.Pair {
	docs := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, kv.Pair{
			Key:   fmt.Sprintf("d%04d", i),
			Value: fmt.Sprintf("target w%03d filler", i%37),
		})
	}
	return docs
}

func startedRunner(t *testing.T, eng *mr.Engine, name string) *incr.Runner {
	t.Helper()
	r, err := incr.NewRunner(eng, wordCountJob(name))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.FS().WriteAllPairs("docs", docsFor(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunInitial("docs", "out0"); err != nil {
		t.Fatal(err)
	}
	return r
}

func getValue(t *testing.T, s *Server, key string) (string, int64) {
	t.Helper()
	ps, ok, epoch, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(ps) != 1 {
		t.Fatalf("Get(%q) = %v %v", key, ps, ok)
	}
	return ps[0].Value, epoch
}

// TestServeConsistentDuringRefresh is the headline guarantee: N
// concurrent readers observe exactly the pre-refresh value for the full
// duration of an in-flight refresh, then flip atomically — per reader,
// the epoch is monotone and every read's value matches its epoch. Run
// under -race this also proves the read path is race-clean against the
// refresh's store mutations and checkpoints.
func TestServeConsistentDuringRefresh(t *testing.T) {
	eng := newEngine(t, t.TempDir(), 2)
	r := startedRunner(t, eng, "wc-consistent")
	defer r.Close()
	srv, err := NewOneStep(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pre, preEpoch := getValue(t, srv, "target")
	if pre != "40" || preEpoch != 1 {
		t.Fatalf("pre-refresh target = %q at epoch %d", pre, preEpoch)
	}

	// The delta adds 10 more documents containing "target".
	var deltas []kv.Delta
	for i := 0; i < 10; i++ {
		deltas = append(deltas, kv.Delta{
			Key: fmt.Sprintf("n%04d", i), Value: "target fresh", Op: kv.OpInsert,
		})
	}
	if err := eng.FS().WriteAllDeltas("delta", deltas); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var inFlight atomic.Bool // true exactly while RunDelta runs (pre-flip)
	var stop atomic.Bool     // readers drain after the refresh completes
	var midRefreshReads atomic.Int64
	type badRead struct{ msg string }
	var mu sync.Mutex
	var bad []badRead
	report := func(format string, args ...any) {
		mu.Lock()
		bad = append(bad, badRead{fmt.Sprintf(format, args...)})
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			lastEpoch := int64(0)
			for !stop.Load() {
				ps, ok, epoch, err := srv.Get("target")
				mid := inFlight.Load() // sampled after the read completed
				if err != nil || !ok || len(ps) != 1 {
					report("reader %d: Get = %v %v %v", rd, ps, ok, err)
					return
				}
				v := ps[0].Value
				switch epoch {
				case 1:
					if v != "40" {
						report("reader %d: epoch 1 read %q, want 40", rd, v)
						return
					}
				case 2:
					if v != "50" {
						report("reader %d: epoch 2 read %q, want 50", rd, v)
						return
					}
				default:
					report("reader %d: unexpected epoch %d", rd, epoch)
					return
				}
				if epoch < lastEpoch {
					report("reader %d: epoch went backwards %d -> %d", rd, lastEpoch, epoch)
					return
				}
				lastEpoch = epoch
				// A read that completed while RunDelta was still running
				// must be a pre-refresh read: the flip only happens after
				// the refresh commits.
				if mid {
					midRefreshReads.Add(1)
					if epoch != 1 || v != "40" {
						report("reader %d: mid-refresh read %q at epoch %d", rd, v, epoch)
						return
					}
				}
			}
		}(rd)
	}

	err = srv.Refresh(func() error {
		inFlight.Store(true)
		_, err := r.RunDelta("delta", "out1")
		inFlight.Store(false)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let readers observe the flipped epoch before draining them.
	for {
		if _, epoch := getValue(t, srv, "target"); epoch == 2 {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	for _, b := range bad {
		t.Error(b.msg)
	}
	if midRefreshReads.Load() == 0 {
		t.Fatal("no reads completed during the in-flight refresh; the test lost its point")
	}
	if post, postEpoch := getValue(t, srv, "target"); post != "50" || postEpoch != 2 {
		t.Fatalf("post-refresh target = %q at epoch %d", post, postEpoch)
	}
	if st := srv.Stats(); st.EpochFlips != 1 || st.SnapshotsOpen != 2 {
		t.Fatalf("stats after refresh = %+v", st)
	}
}

// TestEpochFlipByteIdenticalAcrossResume: the values served after a
// refresh are byte-identical to the ones served by a fresh process that
// incr.Opens the preserved stores (a kill-and-resume of the serving
// deployment).
func TestEpochFlipByteIdenticalAcrossResume(t *testing.T) {
	root := t.TempDir()
	eng := newEngine(t, root, 2)
	r := startedRunner(t, eng, "wc-resume")
	srv, err := NewOneStep(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var deltas []kv.Delta
	for i := 0; i < 7; i++ {
		deltas = append(deltas, kv.Delta{
			Key: fmt.Sprintf("n%04d", i), Value: fmt.Sprintf("target extra w%03d", i), Op: kv.OpInsert,
		})
	}
	if err := eng.FS().WriteAllDeltas("delta", deltas); err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(func() error {
		_, err := r.RunDelta("delta", "out1")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Read the complete post-refresh result set through the server.
	outs, err := r.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(outs)+1)
	for _, o := range outs {
		keys = append(keys, o.Key)
	}
	keys = append(keys, "definitely-missing")
	pairsBefore, foundBefore, _, err := srv.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a second engine over the same roots reattaches.
	eng2 := newEngine(t, root, 2)
	r2, err := incr.Open(eng2, wordCountJob("wc-resume"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	srv2, err := NewOneStep(r2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	pairsAfter, foundAfter, _, err := srv2.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if foundBefore[i] != foundAfter[i] {
			t.Fatalf("key %q found %v before kill, %v after", keys[i], foundBefore[i], foundAfter[i])
		}
		if fmt.Sprint(pairsBefore[i]) != fmt.Sprint(pairsAfter[i]) {
			t.Fatalf("key %q served %v before kill, %v after", keys[i], pairsBefore[i], pairsAfter[i])
		}
	}
}

// TestIncrementalStateServing serves the incremental iterative engine's
// durable state stores (PageRank ranks) and flips across a refresh.
func TestIncrementalStateServing(t *testing.T) {
	eng := newEngine(t, t.TempDir(), 2)
	// A little ring graph: v(i) -> v(i+1).
	const n = 24
	vertex := func(i int) string { return fmt.Sprintf("v%07d", i%n) }
	pairs := make([]kv.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = kv.Pair{Key: vertex(i), Value: vertex(i + 1)}
	}
	if err := eng.FS().WriteAllPairs("graph", pairs); err != nil {
		t.Fatal(err)
	}
	spec := apps.PageRankSpec("serve-pr", apps.DefaultDamping)
	r, err := core.NewRunner(eng, spec, core.Config{NumPartitions: 2, MaxIterations: 40, Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.RunInitial("graph"); err != nil {
		t.Fatal(err)
	}

	srv, err := NewIncremental(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rank, epoch := getValue(t, srv, vertex(3))
	if epoch != 1 {
		t.Fatalf("initial epoch = %d", epoch)
	}
	if _, err := strconv.ParseFloat(strings.Fields(rank)[0], 64); err != nil {
		t.Fatalf("served rank %q is not numeric: %v", rank, err)
	}
	if rank != r.State()[vertex(3)] {
		t.Fatalf("served rank %q != engine state %q", rank, r.State()[vertex(3)])
	}

	// Rewire one vertex to point at v3 and refresh: v3's rank changes.
	delta := []kv.Delta{{Key: vertex(10), Value: vertex(3), Op: kv.OpInsert}}
	if err := eng.FS().WriteAllDeltas("delta", delta); err != nil {
		t.Fatal(err)
	}
	if err := srv.Refresh(func() error {
		_, err := r.RunIncremental("delta")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rank2, epoch2 := getValue(t, srv, vertex(3))
	if epoch2 != 2 {
		t.Fatalf("post-refresh epoch = %d", epoch2)
	}
	if rank2 != r.State()[vertex(3)] {
		t.Fatalf("post-refresh served rank %q != engine state %q", rank2, r.State()[vertex(3)])
	}
	if rank2 == rank {
		t.Fatalf("rank unchanged across refresh (%q); the delta had no effect", rank2)
	}
}

// TestHTTPEndpoints drives the HTTP front: /get, /mget (GET and POST),
// /stats, /healthz, and the closed-server behavior.
func TestHTTPEndpoints(t *testing.T) {
	eng := newEngine(t, t.TempDir(), 2)
	r := startedRunner(t, eng, "wc-http")
	defer r.Close()
	srv, err := NewOneStep(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil && into != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode
	}

	var got HTTPGetResponse
	if code := getJSON("/get?key=target", &got); code != http.StatusOK {
		t.Fatalf("/get status %d", code)
	}
	if !got.Found || len(got.Pairs) != 1 || got.Pairs[0].Value != "40" || got.Epoch != 1 {
		t.Fatalf("/get = %+v", got)
	}
	if code := getJSON("/get?key=definitely-missing", &got); code != http.StatusOK || got.Found {
		t.Fatalf("/get missing = %d %+v", code, got)
	}
	var errResp map[string]string
	if code := getJSON("/get", &errResp); code != http.StatusBadRequest {
		t.Fatalf("/get without key = %d", code)
	}

	var mg HTTPMGetResponse
	if code := getJSON("/mget?key=target&key=nope", &mg); code != http.StatusOK {
		t.Fatalf("/mget status %d", code)
	}
	if len(mg.Values) != 2 || !mg.Values[0].Found || mg.Values[1].Found {
		t.Fatalf("/mget = %+v", mg)
	}
	body := strings.NewReader(`{"keys":["target","w001"]}`)
	resp, err := http.Post(ts.URL+"/mget", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	mg = HTTPMGetResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&mg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(mg.Values) != 2 || !mg.Values[0].Found {
		t.Fatalf("POST /mget = %d %+v", resp.StatusCode, mg)
	}

	var st Stats
	if code := getJSON("/stats", &st); code != http.StatusOK || st.Epoch != 1 || st.Partitions != 2 {
		t.Fatalf("/stats = %d %+v", code, st)
	}
	if code := getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON("/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after Close = %d", code)
	}
	if code := getJSON("/get?key=target", &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("/get after Close = %d", code)
	}
}

// TestCacheCounters: repeated lookups hit the per-epoch cache; a flip
// drops it.
func TestCacheCounters(t *testing.T) {
	eng := newEngine(t, t.TempDir(), 2)
	r := startedRunner(t, eng, "wc-cache")
	defer r.Close()
	srv, err := NewOneStep(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 5; i++ {
		if _, _, _, err := srv.Get("target"); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Fatalf("cache counters = %+v", st)
	}
	if err := srv.Flip(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := srv.Get("target"); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.CacheMisses != 2 {
		t.Fatalf("flip did not drop the cache: %+v", st)
	}
}
