package shuffle

import (
	"time"

	"i2mapreduce/internal/kv"
)

// Emitter stages one map task attempt's output privately and publishes
// it to the shared Buffer only when the attempt succeeds. The cluster
// retries failed task attempts, so a direct Buffer.Emit from a task
// body would leave a failed attempt's partial output visible and a
// successful retry would duplicate it; an Emitter's output is atomic
// per attempt: Publish on success, Discard on failure, never both
// halves. Spill counters and sort-stage time are likewise accounted
// only at Publish, so a discarded attempt leaves no trace in metrics.
//
// Staging honours the memory budget: the attempt's total staging is
// bounded by the Buffer's per-partition share, and on overflow the
// largest destination stage spills to that destination's scratch dir —
// so skewed output produces few large runs rather than many tiny ones.
// An Emitter is not safe for concurrent use (a task attempt is
// single-goroutine); distinct Emitters are independent.
type Emitter struct {
	b     *Buffer
	bufs  [][]kv.Pair
	bytes []int64
	runs  [][]string
	recs  []int64
	net   []int64
	total int64 // budget-charged bytes staged in memory across bufs
	err   error

	// Deferred spill accounting, applied at Publish.
	spillRuns  int64
	spillBytes int64
	spillDur   time.Duration
	spillReuse int64

	// Batched hot-key observations (when the Buffer has skew detection
	// on): per-key counts accumulate locally and flush into the stripe
	// sketches every emitterSketchBatch records, so the staged fast
	// path does not take a stripe lock per record. A discarded attempt
	// may have flushed counts already — detection is a heuristic and
	// tolerates that.
	skewCnt map[string]int64
	skewN   int64
}

// emitterSketchBatch is how many staged records accumulate before their
// hot-key counts flush into the shared stripe sketches.
const emitterSketchBatch = 128

// NewEmitter returns an empty staging emitter for one task attempt.
func (b *Buffer) NewEmitter() *Emitter {
	n := b.cfg.Partitions
	return &Emitter{
		b:     b,
		bufs:  make([][]kv.Pair, n),
		bytes: make([]int64, n),
		runs:  make([][]string, n),
		recs:  make([]int64, n),
		net:   make([]int64, n),
	}
}

// Emit stages one intermediate pair. I/O errors from staging spills are
// remembered and returned by Err (and by Publish), so user Map
// functions keep their error-free emit signature.
func (e *Emitter) Emit(key, value string) {
	if e.err != nil {
		return
	}
	// As in Buffer.Emit, partitioning and byte accounting use the base
	// key; only the stored pair carries a sub-key when the key is hot.
	d := e.b.cfg.Partition(key, e.b.cfg.Partitions)
	storeKey := key
	if e.b.skew != nil {
		storeKey = e.b.skew.route(key)
		if storeKey == key {
			if e.skewCnt == nil {
				e.skewCnt = make(map[string]int64)
			}
			e.skewCnt[key]++
			e.skewN++
			if e.skewN >= emitterSketchBatch {
				e.flushSkew()
			}
		}
	}
	e.bufs[d] = append(e.bufs[d], kv.Pair{Key: storeKey, Value: value})
	sz := int64(len(key) + len(value))
	e.recs[d]++
	e.net[d] += sz
	e.bytes[d] += sz + pairOverhead
	e.total += sz + pairOverhead
	if e.b.perPart > 0 && e.total > e.b.perPart {
		e.spillLargest()
	}
}

// spillLargest spills the destination stage holding the most bytes.
func (e *Emitter) spillLargest() {
	d := 0
	for i := range e.bytes {
		if e.bytes[i] > e.bytes[d] {
			d = i
		}
	}
	if len(e.bufs[d]) == 0 {
		return
	}
	path, n, dur, err := e.b.writeSpillRun(d, e.bufs[d])
	putRunBuffer(e.bufs[d])
	e.total -= e.bytes[d]
	var reused int64
	e.bufs[d], reused = getRunBuffer()
	e.bytes[d] = 0
	if err != nil {
		e.err = err
		return
	}
	e.runs[d] = append(e.runs[d], path)
	e.spillRuns++
	e.spillBytes += n
	e.spillDur += dur
	e.spillReuse += reused
}

// flushSkew merges the local hot-key counts into the stripe sketches,
// promoting keys that crossed the skew ratio.
func (e *Emitter) flushSkew() {
	for key, n := range e.skewCnt {
		d := e.b.cfg.Partition(key, e.b.cfg.Partitions)
		p := &e.b.parts[d]
		p.mu.Lock()
		e.b.observeLocked(p, key, n)
		p.mu.Unlock()
	}
	e.skewCnt, e.skewN = nil, 0
}

// Err returns the first staging error, if any.
func (e *Emitter) Err() error { return e.err }

// Publish atomically registers the staged output with the shared
// Buffer: spilled runs and residual pairs become visible to reducers,
// deferred spill accounting lands in the report, and stripes that
// overflow their share spill as usual. The Emitter is spent afterwards.
func (e *Emitter) Publish() error {
	if e.err != nil {
		e.Discard()
		return e.err
	}
	if e.b.skew != nil && e.skewN > 0 {
		e.flushSkew()
	}
	for d := range e.bufs {
		if len(e.bufs[d]) == 0 && len(e.runs[d]) == 0 {
			continue
		}
		p := &e.b.parts[d]
		p.mu.Lock()
		if p.sealed {
			p.mu.Unlock()
			panic("shuffle: Publish after FinishMap")
		}
		p.runs = append(p.runs, e.runs[d]...)
		p.pairs = append(p.pairs, e.bufs[d]...)
		p.bytes += e.bytes[d]
		p.recs += e.recs[d]
		p.netBytes += e.net[d]
		e.b.maybeSpillLocked(d, p) // releases p.mu
		putRunBuffer(e.bufs[d])    // staged contents now live in p.pairs
		e.bufs[d], e.runs[d] = nil, nil
	}
	e.b.accountSpills(e.spillRuns, e.spillBytes, e.spillDur, e.spillReuse)
	e.spillRuns, e.spillBytes, e.spillDur, e.spillReuse = 0, 0, 0, 0
	return nil
}

// Discard drops the staged output of a failed attempt, removing its
// spill files. The shared Buffer and the metrics are untouched.
func (e *Emitter) Discard() {
	for d := range e.runs {
		removeFiles(e.runs[d])
		e.runs[d], e.bufs[d] = nil, nil
	}
}
