package shuffle

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
	"i2mapreduce/internal/par"
)

// Hot-key skew mitigation. One pathological key ("the" in a word count,
// a celebrity vertex in PageRank) can hold most of a partition's
// records, so its reduce group serializes the partition no matter how
// many reduce slots exist — the load-balancing gap the i2MapReduce
// authors deferred to SkewTune. The runtime closes it in three steps:
//
//  1. Detect: each partition stripe feeds emitted keys through a small
//     space-saving sketch (Metwally et al., "Efficient computation of
//     frequent and top-k elements in data streams") under the stripe
//     lock it already holds. When a key's estimated share of the
//     stripe's records exceeds Config.SkewRatio, it is promoted to the
//     Buffer-wide split set.
//  2. Split: emissions of a promoted key are rerouted round-robin to
//     Config.SkewFanOut sub-keys — the key plus a 0x00 separator and a
//     two-hex-digit shard index — still placed in the *base key's*
//     destination partition. Because 0x00 is the smallest byte, the
//     sub-keys sort as a contiguous block immediately after any residue
//     of the base key, and the sorted-run/merge machinery needs no
//     changes.
//  3. Merge back: Reduce wraps its group stream in a collator that
//     recognizes the block, k-way merges the sub-groups' value-sorted
//     lists, and yields a single group for the base key whose value
//     order equals kv.SortPairs order — byte-identical to an unsplit
//     shuffle. When Config.Combine is set, the sub-groups are first
//     pre-aggregated in parallel (the "split across tasks" payoff: the
//     hot group's aggregation work fans out instead of serializing),
//     and the combine contract makes the final output identical too.
//
// Keys containing 0x00 bytes must not be emitted while splitting is
// enabled: a crafted key could collide with a sub-key encoding. The
// engines' keys (words, vertex ids, cluster ids) are plain text.

const (
	// defaultSkewFanOut is how many sub-keys a hot key splits into when
	// Config.SkewFanOut is 0.
	defaultSkewFanOut = 8
	// defaultSkewMinRecords is the per-stripe record count below which
	// detection stays off (shares are noise on tiny prefixes).
	defaultSkewMinRecords = 256
	// defaultSketchSize is the space-saving sketch capacity per stripe.
	defaultSketchSize = 64
	// maxSkewFanOut bounds the two-hex-digit sub-key encoding.
	maxSkewFanOut = 256
	// subKeySep separates a base key from its shard index.
	subKeySep = byte(0x00)
)

// topKSketch is a space-saving sketch: at most cap counters; an unseen
// key evicts the minimum counter and inherits its count as error bound.
// Estimates never undercount, and for genuinely heavy keys the
// overcount is bounded by the evicted minimum — exactly the guarantee
// hot-key detection needs (false positives cost a little splitting,
// false negatives would leave the skew in place).
type topKSketch struct {
	cap      int
	counters map[string]*sketchCounter
}

type sketchCounter struct {
	count int64
	err   int64 // count inherited at insertion; true count >= count-err
}

func newTopKSketch(capacity int) *topKSketch {
	return &topKSketch{cap: capacity, counters: make(map[string]*sketchCounter, capacity)}
}

// observe adds n occurrences of key and returns the new estimate.
func (s *topKSketch) observe(key string, n int64) int64 {
	if c, ok := s.counters[key]; ok {
		c.count += n
		return c.count
	}
	if len(s.counters) < s.cap {
		s.counters[key] = &sketchCounter{count: n}
		return n
	}
	// Evict the minimum counter; the newcomer inherits its count as the
	// error bound.
	var minKey string
	var minC *sketchCounter
	for k, c := range s.counters {
		if minC == nil || c.count < minC.count {
			minKey, minC = k, c
		}
	}
	delete(s.counters, minKey)
	s.counters[key] = &sketchCounter{count: minC.count + n, err: minC.count}
	return minC.count + n
}

// HotKey is one tracked heavy key: the estimate is an upper bound on
// its true count, and Estimate-Err a lower bound.
type HotKey struct {
	Key       string
	Partition int
	Estimate  int64
	Err       int64
	Split     bool
}

// splitKey is one promoted hot key's routing state.
type splitKey struct {
	next atomic.Int64 // round-robin shard cursor
}

// skewState is the Buffer-wide split registry plus counters. It exists
// only when Config.SkewRatio > 0.
type skewState struct {
	fanOut     int
	minRecords int64
	mu         sync.RWMutex
	split      map[string]*splitKey
	frozen     map[string]bool // immutable after FinishMap; read lock-free by reducers
	splitRecs  atomic.Int64
}

func newSkewState(cfg Config) *skewState {
	fan := cfg.SkewFanOut
	if fan <= 0 {
		fan = defaultSkewFanOut
	}
	if fan > maxSkewFanOut {
		fan = maxSkewFanOut
	}
	min := cfg.SkewMinRecords
	if min <= 0 {
		min = defaultSkewMinRecords
	}
	return &skewState{fanOut: fan, minRecords: min, split: make(map[string]*splitKey)}
}

// lookup returns the split entry for key, or nil.
func (s *skewState) lookup(key string) *splitKey {
	s.mu.RLock()
	sk := s.split[key]
	s.mu.RUnlock()
	return sk
}

// promote adds key to the split set (idempotent).
func (s *skewState) promote(key string) {
	s.mu.Lock()
	if _, ok := s.split[key]; !ok {
		s.split[key] = &splitKey{}
	}
	s.mu.Unlock()
}

// freeze snapshots the split set for lock-free reduce-side reads and
// returns its size.
func (s *skewState) freeze() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = make(map[string]bool, len(s.split))
	for k := range s.split {
		s.frozen[k] = true
	}
	return len(s.frozen)
}

// subKey encodes shard i of base as base + 0x00 + two hex digits, so
// shards sort contiguously right after the base key's own residue.
func subKey(base string, i int64) string {
	return fmt.Sprintf("%s%c%02x", base, subKeySep, i)
}

// splitBase recognizes a sub-key of a frozen split key and returns the
// base. ok is false for ordinary keys.
func (s *skewState) splitBase(key string) (string, bool) {
	// The suffix is 3 bytes: the 0x00 separator plus two hex digits.
	if len(key) < 3 || key[len(key)-3] != subKeySep {
		return "", false
	}
	base := key[:len(key)-3]
	if !s.frozen[base] {
		return "", false
	}
	return base, true
}

// route returns the key to store for one emission of key: the next
// sub-key when key is split, else key itself.
func (s *skewState) route(key string) string {
	sk := s.lookup(key)
	if sk == nil {
		return key
	}
	s.splitRecs.Add(1)
	return subKey(key, sk.next.Add(1)%int64(s.fanOut))
}

// observeLocked feeds n occurrences of key into stripe p's sketch and
// promotes it when its share of the stripe's seen records crosses the
// ratio. Caller holds p.mu.
func (b *Buffer) observeLocked(p *partition, key string, n int64) {
	if p.sketch == nil {
		p.sketch = newTopKSketch(defaultSketchSize)
	}
	p.seen += n
	est := p.sketch.observe(key, n)
	if p.seen >= b.skew.minRecords && float64(est) > b.cfg.SkewRatio*float64(p.seen) {
		b.skew.promote(key)
	}
}

// HotKeys returns the union of the stripes' tracked heavy keys, largest
// estimate first. Diagnostic: call after FinishMap.
func (b *Buffer) HotKeys() []HotKey {
	if b.skew == nil {
		return nil
	}
	var out []HotKey
	b.skew.mu.RLock()
	split := make(map[string]bool, len(b.skew.split))
	for k := range b.skew.split {
		split[k] = true
	}
	b.skew.mu.RUnlock()
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		if p.sketch != nil {
			for k, c := range p.sketch.counters {
				out = append(out, HotKey{Key: k, Partition: i, Estimate: c.count, Err: c.err, Split: split[k]})
			}
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// collator reassembles split reduce groups from the (key, value)-sorted
// group stream. Sub-keys of one base key arrive as a contiguous block
// (possibly preceded by the base key's own residue group); the collator
// buffers the block's value lists and emits one merged group. Ordinary
// groups pass through, through Combine when configured.
type collator struct {
	b       *Buffer
	yield   func(kv.Group) error
	pending bool
	base    string
	lists   [][]string
}

func (b *Buffer) newCollator(yield func(g kv.Group) error) *collator {
	return &collator{b: b, yield: yield}
}

// add consumes one raw group from the merge stream.
func (c *collator) add(g kv.Group) error {
	if base, ok := c.b.splitBase(g.Key); ok {
		if !c.pending || c.base != base {
			if err := c.flush(); err != nil {
				return err
			}
			c.pending, c.base = true, base
		}
		// The stream reuses g.Values after we return; copy to buffer.
		c.lists = append(c.lists, append([]string(nil), g.Values...))
		return nil
	}
	if err := c.flush(); err != nil {
		return err
	}
	if c.b.isSplit(g.Key) {
		// Residue group of a split key: records emitted before the key
		// went hot. Its sub-groups follow immediately; buffer it.
		c.pending, c.base = true, g.Key
		c.lists = append(c.lists, append([]string(nil), g.Values...))
		return nil
	}
	return c.emit(g.Key, [][]string{g.Values}, false)
}

// close flushes any buffered block; call after the stream ends.
func (c *collator) close() error { return c.flush() }

func (c *collator) flush() error {
	if !c.pending {
		return nil
	}
	base, lists := c.base, c.lists
	c.pending, c.base, c.lists = false, "", nil
	return c.emit(base, lists, true)
}

// emit yields one logical group assembled from lists (each value-sorted,
// as kv.SortPairs left them). With a Combine, each list is
// pre-aggregated in its own goroutine — the split hot group's reduce
// work runs in parallel — then the partial outputs merge and combine
// once more; without one, the lists merge directly, reproducing the
// exact unsplit value order.
func (c *collator) emit(key string, lists [][]string, merged bool) error {
	if merged && c.b.cfg.Report != nil {
		c.b.cfg.Report.Add(metrics.CounterHotKeyMergedGroups, 1)
	}
	combine := c.b.cfg.Combine
	if combine != nil {
		if len(lists) > 1 {
			// Per-list pre-aggregation through par.Do (GOMAXPROCS-bounded,
			// was an unbounded goroutine-per-list fan-out). combine never
			// errors, so Do's result is always nil.
			_ = par.Do(len(lists), 0, func(i int) error {
				lists[i] = combine(key, lists[i])
				return nil
			})
			return c.yield(kv.Group{Key: key, Values: combine(key, mergeSortedLists(lists))})
		}
		return c.yield(kv.Group{Key: key, Values: combine(key, lists[0])})
	}
	if len(lists) == 1 {
		return c.yield(kv.Group{Key: key, Values: lists[0]})
	}
	return c.yield(kv.Group{Key: key, Values: mergeSortedLists(lists)})
}

// mergeSortedLists k-way merges sorted string slices into one sorted
// slice. Ties break by list order; tied elements are equal strings, so
// the output bytes are deterministic regardless.
func mergeSortedLists(lists [][]string) []string {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]string, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || l[idx[i]] < lists[best][idx[best]] {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// skewOn reports whether hot-key detection is enabled.
func (b *Buffer) skewOn() bool { return b.skew != nil }

// isSplit reports whether key was promoted, reading the frozen set when
// available (reduce side) and the live set otherwise.
func (b *Buffer) isSplit(key string) bool {
	if b.skew == nil {
		return false
	}
	if b.skew.frozen != nil {
		return b.skew.frozen[key]
	}
	return b.skew.lookup(key) != nil
}

// splitBase delegates to the skew state (false when skew is off).
func (b *Buffer) splitBase(key string) (string, bool) {
	if b.skew == nil || b.skew.frozen == nil {
		return "", false
	}
	return b.skew.splitBase(key)
}
