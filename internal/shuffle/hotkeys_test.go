package shuffle

import (
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

func TestTopKSketchNeverUndercounts(t *testing.T) {
	s := newTopKSketch(8)
	true_ := make(map[string]int64)
	// 200 distinct keys with a heavy head: key i appears 1000/(i+1) times.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		n := int64(1000 / (i + 1))
		for j := int64(0); j < n; j++ {
			s.observe(k, 1)
			true_[k]++
		}
	}
	for k, c := range s.counters {
		if c.count < true_[k] {
			t.Errorf("sketch undercounts %q: est %d < true %d", k, c.count, true_[k])
		}
		if c.count-c.err > true_[k] {
			t.Errorf("sketch lower bound wrong for %q: %d-%d > true %d", k, c.count, c.err, true_[k])
		}
	}
	// The overwhelmingly heaviest key must be tracked with a tight estimate.
	c, ok := s.counters["key-000"]
	if !ok {
		t.Fatal("heaviest key evicted from sketch")
	}
	if c.count < 1000 || c.err > 200 {
		t.Errorf("heaviest key estimate %d (err %d), want >= 1000 with small error", c.count, c.err)
	}
}

func TestTopKSketchWeightedObserve(t *testing.T) {
	s := newTopKSketch(4)
	s.observe("a", 10)
	if got := s.observe("a", 5); got != 15 {
		t.Fatalf("weighted observe = %d, want 15", got)
	}
}

// skewedPairs is a workload where one key holds ~60% of the records.
func skewedPairs(n int) []kv.Pair {
	ps := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		key := "hotword"
		if i%5 >= 3 {
			key = fmt.Sprintf("cold-%03d", i%97)
		}
		ps = append(ps, kv.Pair{Key: key, Value: fmt.Sprintf("v%06d", (i*2654435761)%100000)})
	}
	return ps
}

// drainAll reduces every partition in order and returns the exact group
// sequence (keys and value slices), which the byte-identity tests
// compare across configurations.
func drainAll(t *testing.T, b *Buffer, parts int) []kv.Group {
	t.Helper()
	var out []kv.Group
	for p := 0; p < parts; p++ {
		err := b.Reduce(p, func(g kv.Group) error {
			out = append(out, kv.Group{Key: g.Key, Values: append([]string(nil), g.Values...)})
			return nil
		})
		if err != nil {
			t.Fatalf("Reduce(%d): %v", p, err)
		}
	}
	return out
}

func TestSplitGroupsByteIdenticalToUnsplit(t *testing.T) {
	pairs := skewedPairs(4000)
	for _, budget := range []int64{0, 1 << 12} { // in-memory and heavy-spill
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			build := func(ratio float64) *Buffer {
				dir := t.TempDir()
				b, err := New(Config{
					Partitions:     4,
					MemoryBudget:   budget,
					ScratchDir:     func(p int) string { return fmt.Sprintf("%s/p%d", dir, p) },
					SkewRatio:      ratio,
					SkewFanOut:     4,
					SkewMinRecords: 64,
					Report:         &metrics.Report{},
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, pr := range pairs {
					b.Emit(pr.Key, pr.Value)
				}
				if err := b.FinishMap(); err != nil {
					t.Fatal(err)
				}
				return b
			}
			plain := build(0)
			defer plain.Close()
			split := build(0.3)
			defer split.Close()

			if split.cfg.Report.Counter(metrics.CounterHotKeysDetected) == 0 {
				t.Fatal("skewed workload detected no hot keys")
			}
			if split.cfg.Report.Counter(metrics.CounterHotKeySplitRecords) == 0 {
				t.Fatal("hot key detected but no records split")
			}

			got := drainAll(t, split, 4)
			want := drainAll(t, plain, 4)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("split shuffle diverged from unsplit: %d vs %d groups", len(got), len(want))
			}
			if split.cfg.Report.Counter(metrics.CounterHotKeyMergedGroups) == 0 {
				t.Error("no merged groups counted despite split records")
			}
		})
	}
}

func TestSplitByteIdenticalWithConcurrentEmitters(t *testing.T) {
	// Byte-identity must hold regardless of which emissions race past
	// the detection threshold; run under -race this also exercises the
	// sketch/registry locking.
	pairs := skewedPairs(6000)
	run := func(ratio float64) []kv.Group {
		dir := t.TempDir()
		b, err := New(Config{
			Partitions:     4,
			MemoryBudget:   1 << 13,
			ScratchDir:     func(p int) string { return fmt.Sprintf("%s/p%d", dir, p) },
			SkewRatio:      ratio,
			SkewFanOut:     8,
			SkewMinRecords: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				em := b.NewEmitter()
				for i := w; i < len(pairs); i += 4 {
					em.Emit(pairs[i].Key, pairs[i].Value)
				}
				if err := em.Publish(); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		if err := b.FinishMap(); err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		return drainAll(t, b, 4)
	}
	if got, want := run(0.3), run(0); !reflect.DeepEqual(got, want) {
		t.Fatal("concurrent split shuffle diverged from unsplit")
	}
}

// sumCombine is an associative combine: values are decimal counts and
// collapse to their sum. Partial sums re-combine to the same total, so
// split and unsplit shuffles must agree.
func sumCombine(_ string, values []string) []string {
	var sum int64
	for _, v := range values {
		n, _ := strconv.ParseInt(v, 10, 64)
		sum += n
	}
	return []string{strconv.FormatInt(sum, 10)}
}

func TestSplitWithCombineMatchesUnsplitCombine(t *testing.T) {
	n := 3000
	build := func(ratio float64) *Buffer {
		b, err := New(Config{
			Partitions:     2,
			SkewRatio:      ratio,
			SkewFanOut:     4,
			SkewMinRecords: 32,
			Combine:        sumCombine,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			key := "hot"
			if i%4 == 3 {
				key = fmt.Sprintf("cold-%02d", i%23)
			}
			b.Emit(key, "1")
		}
		if err := b.FinishMap(); err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := build(0)
	defer plain.Close()
	split := build(0.25)
	defer split.Close()
	got := drainAll(t, split, 2)
	want := drainAll(t, plain, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combined split output diverged: got %v want %v", got, want)
	}
	// The combine must actually have collapsed the hot group.
	for _, g := range got {
		if g.Key == "hot" {
			if len(g.Values) != 1 || g.Values[0] != strconv.Itoa(3*n/4) {
				t.Fatalf("hot group = %v, want single sum %d", g.Values, 3*n/4)
			}
		}
	}
}

func TestHotKeysAccessor(t *testing.T) {
	b, err := New(Config{Partitions: 2, SkewRatio: 0.4, SkewMinRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		b.Emit("dominant", "v")
		if i%10 == 0 {
			b.Emit(fmt.Sprintf("minor-%d", i), "v")
		}
	}
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	hks := b.HotKeys()
	if len(hks) == 0 {
		t.Fatal("no hot keys tracked")
	}
	if hks[0].Key != "dominant" || !hks[0].Split {
		t.Fatalf("top hot key = %+v, want dominant/split", hks[0])
	}
}

func TestMergeSortedLists(t *testing.T) {
	cases := []struct {
		in   [][]string
		want []string
	}{
		{nil, nil},
		{[][]string{{"a", "c"}}, []string{"a", "c"}},
		{[][]string{{"a", "c"}, {"b"}, {"a", "z"}}, []string{"a", "a", "b", "c", "z"}},
		{[][]string{{}, {"x"}}, []string{"x"}},
	}
	for _, c := range cases {
		if got := mergeSortedLists(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("mergeSortedLists(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSkewRatioValidation(t *testing.T) {
	if _, err := New(Config{Partitions: 1, SkewRatio: 1.5}); err == nil {
		t.Error("SkewRatio >= 1 accepted")
	}
	if _, err := New(Config{Partitions: 1, SkewRatio: -0.1}); err == nil {
		t.Error("negative SkewRatio accepted")
	}
}
