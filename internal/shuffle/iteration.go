package shuffle

import (
	"fmt"
	"time"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// GroupSource streams the merged, grouped intermediate data of one
// partition to a reduce callback.
type GroupSource func(yield func(g kv.Group) error) error

// Iteration describes one prime Map -> shuffle -> prime Reduce pass of
// an iterative engine. The engine supplies the per-partition callbacks
// (structure reading, the user Map, state access inside Reduce); the
// runtime owns the scaffolding both engines used to duplicate: task
// construction, the lock-striped shuffle buffers, spilling, the
// streaming merge, and stage/counter accounting.
type Iteration struct {
	// Name prefixes task names, e.g. "pagerank/it003".
	Name string
	// Partitions is the partition count; one prime Map and one prime
	// Reduce task run per partition.
	Partitions int
	// NumNodes sizes the cluster; partition p prefers node p % NumNodes,
	// co-locating a partition's map task, reduce task, cached structure
	// file, and state store (the paper's Sec. 4.3 placement).
	NumNodes int
	// RunTasks executes one task wave on the cluster (iter passes
	// Cluster.Run; core passes its event-accumulating wrapper).
	RunTasks func(tasks []cluster.Task) error
	// MemoryBudget and ScratchDir configure spilling (see Config).
	MemoryBudget int64
	ScratchDir   func(p int) string
	// SkewRatio / SkewFanOut / Combine configure hot-key skew
	// mitigation (see Config and hotkeys.go); zero values disable it.
	SkewRatio  float64
	SkewFanOut int
	Combine    func(key string, values []string) []string
	// Report receives the iteration's stage timings and counters.
	Report *metrics.Report
	// MapPartition feeds partition p's structure records through the
	// prime Map, emitting intermediate pairs. It returns the input
	// record count ("map.records.in").
	MapPartition func(p int, emit func(k2, v2 string)) (records int64, err error)
	// ReducePartition consumes partition p's grouped stream and applies
	// the engine's state-update policy.
	ReducePartition func(p int, groups GroupSource) error
}

// Run executes the pass. The intermediate data lives in a Buffer whose
// memory footprint is bounded by MemoryBudget; spill files are removed
// before Run returns.
func (it Iteration) Run() error {
	buf, err := New(Config{
		Partitions:   it.Partitions,
		MemoryBudget: it.MemoryBudget,
		ScratchDir:   it.ScratchDir,
		Report:       it.Report,
		SkewRatio:    it.SkewRatio,
		SkewFanOut:   it.SkewFanOut,
		Combine:      it.Combine,
	})
	if err != nil {
		return err
	}
	defer buf.Close()

	mapTasks := make([]cluster.Task, 0, it.Partitions)
	for p := 0; p < it.Partitions; p++ {
		p := p
		mapTasks = append(mapTasks, cluster.Task{
			Name:      fmt.Sprintf("%s/map-%04d", it.Name, p),
			Preferred: p % it.NumNodes,
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				// Stage through a per-attempt Emitter: a failed attempt
				// publishes nothing, so the cluster's retry cannot
				// duplicate intermediate pairs.
				em := buf.NewEmitter()
				recs, err := it.MapPartition(p, em.Emit)
				if err != nil {
					em.Discard()
					return err
				}
				if err := em.Publish(); err != nil {
					return err
				}
				if it.Report != nil {
					it.Report.Add(metrics.CounterMapRecordsIn, recs)
					it.Report.AddStage(metrics.StageMap, time.Since(start))
				}
				return nil
			},
		})
	}
	if err := it.RunTasks(mapTasks); err != nil {
		return fmt.Errorf("map phase: %w", err)
	}
	if err := buf.FinishMap(); err != nil {
		return fmt.Errorf("map spill: %w", err)
	}
	// Spill sorting happened inside the timed map windows but is
	// reported as StageSort; rebalance so Total() counts it once.
	mapSort := buf.SortDuration()
	if it.Report != nil {
		it.Report.AddStage(metrics.StageMap, -mapSort)
	}

	if it.Report != nil {
		// The network hop of the shuffle is accounted, not performed:
		// spill runs are already written to the consuming partition's
		// node-local scratch.
		shuffleStart := time.Now()
		it.Report.Add(metrics.CounterShuffleBytes, buf.Bytes())
		it.Report.Add(metrics.CounterMapRecordsOut, buf.Records())
		it.Report.AddStage(metrics.StageShuffle, time.Since(shuffleStart))
	}

	reduceTasks := make([]cluster.Task, 0, it.Partitions)
	for p := 0; p < it.Partitions; p++ {
		p := p
		reduceTasks = append(reduceTasks, cluster.Task{
			Name:      fmt.Sprintf("%s/reduce-%04d", it.Name, p),
			Preferred: p % it.NumNodes,
			Run: func(tc cluster.TaskContext) error {
				start := time.Now()
				err := it.ReducePartition(p, func(yield func(g kv.Group) error) error {
					return buf.Reduce(p, yield)
				})
				if err != nil {
					return err
				}
				if it.Report != nil {
					it.Report.AddStage(metrics.StageReduce, time.Since(start))
				}
				return nil
			},
		})
	}
	if err := it.RunTasks(reduceTasks); err != nil {
		return fmt.Errorf("reduce phase: %w", err)
	}
	// Same rebalance for the residue sorts inside reduce windows.
	if it.Report != nil {
		it.Report.AddStage(metrics.StageReduce, -(buf.SortDuration() - mapSort))
	}
	return nil
}
