// Package shuffle is the streaming shuffle runtime shared by the
// iterative engines (internal/iter and internal/core). It replaces the
// engines' former private iteration loops, which buffered the whole
// intermediate dataset behind one global mutex and re-sorted every
// partition from scratch each iteration.
//
// The runtime has three pieces:
//
//   - a Buffer of per-destination, lock-striped partition buffers, so
//     concurrent map tasks emitting to different partitions never
//     contend on a shared mutex;
//   - map-side production of sorted runs under a configurable memory
//     budget: when a partition buffer exceeds its share of the budget,
//     the buffered pairs are sorted and spilled as one run file to
//     node-local scratch, bounding an iteration's memory footprint by
//     the budget rather than the intermediate data size;
//   - a reduce-side streaming k-way merge (kv.NewMergerByKeyValue) and
//     group, so spilled runs and the in-memory residue drain as a
//     single (key, value)-ordered stream. Because the merge reproduces
//     kv.SortPairs' total order, reduce groups are byte-identical at
//     any budget, spill count, or emit interleaving.
//
// Iteration (iteration.go) layers the prime Map -> shuffle -> prime
// Reduce task scaffolding on top, so both engines run the same loop.
package shuffle

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// pairOverhead approximates the per-record bookkeeping (string headers,
// slice growth) charged against the memory budget in addition to key
// and value bytes, so tiny records cannot make the budget meaningless.
const pairOverhead = 32

// Config describes one Buffer.
type Config struct {
	// Partitions is the number of destination (reduce) partitions.
	Partitions int
	// MemoryBudget bounds the total bytes of intermediate pairs held in
	// memory across all partition buffers. Each partition spills when
	// its buffer exceeds MemoryBudget / Partitions. <= 0 disables
	// spilling (everything stays in memory, as the old loops did).
	MemoryBudget int64
	// ScratchDir names the node-local directory for partition p's spill
	// runs. Required when MemoryBudget > 0; the directory is created on
	// first spill and the run files are removed by Close.
	ScratchDir func(p int) string
	// Partition routes an intermediate key to a destination partition.
	// Defaults to kv.Partition.
	Partition func(key string, n int) int
	// Report, when set, receives the spill counters
	// (metrics.CounterSpillRuns / CounterSpillBytes) and sort-stage
	// timings as they accrue.
	Report *metrics.Report

	// SkewRatio > 0 enables hot-key skew mitigation (see hotkeys.go):
	// a key whose estimated share of its partition's records exceeds
	// SkewRatio is split across SkewFanOut sub-keys during the map
	// phase and reassembled by Reduce, byte-identically. Must be < 1.
	SkewRatio float64
	// SkewFanOut is the sub-key count hot keys split into (default 8,
	// max 256).
	SkewFanOut int
	// SkewMinRecords is the per-partition record count below which
	// detection stays off (default 256).
	SkewMinRecords int64
	// Combine, when set, pre-aggregates every reduce group's values
	// before they reach the reduce callback; for split hot keys the
	// sub-groups combine in parallel first. Combine must be a pure
	// associative aggregation returning sorted values, such that
	// combining partial combines equals combining the whole group —
	// then split and unsplit shuffles stay byte-identical. Combine must
	// not retain the slice it is given.
	Combine func(key string, values []string) []string
}

// Buffer collects the intermediate pairs of one iteration. Emit is safe
// for concurrent use by any number of map tasks; Reduce streams one
// partition after FinishMap seals the buffers.
type Buffer struct {
	cfg     Config
	perPart int64 // per-stripe budget share; also each Emitter's total staging share
	parts   []partition
	// runSeq hands out unique spill-file sequence numbers across
	// stripes and task emitters.
	runSeq atomic.Int64
	// sortNanos accumulates the durations attributed to StageSort
	// (spill sort+write, residue sort). They occur inside map/reduce
	// task windows, so the Iteration driver subtracts them from those
	// stages to keep Report.Total() equal to wall work.
	sortNanos atomic.Int64
	// skew is the hot-key split registry; nil unless cfg.SkewRatio > 0.
	skew *skewState
}

// partition is one destination's stripe: its own mutex, in-memory
// buffer, and spilled run files.
type partition struct {
	mu       sync.Mutex
	pairs    []kv.Pair
	bytes    int64    // budget-charged size of pairs
	runs     []string // spill file paths
	err      error    // first spill error; surfaced by FinishMap
	recs     int64    // records emitted to this partition
	netBytes int64    // key+value bytes (the simulated network transfer)
	sealed   bool
	sorted   bool // residue sorted (done lazily by the first Reduce)

	// Hot-key detection state (nil / zero unless Config.SkewRatio > 0).
	sketch *topKSketch
	seen   int64 // records observed for detection (published + staged)
}

// New validates cfg and returns an empty Buffer.
func New(cfg Config) (*Buffer, error) {
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("shuffle: Config.Partitions = %d", cfg.Partitions)
	}
	if cfg.MemoryBudget > 0 && cfg.ScratchDir == nil {
		return nil, errors.New("shuffle: MemoryBudget requires ScratchDir")
	}
	if cfg.Partition == nil {
		cfg.Partition = kv.Partition
	}
	if cfg.SkewRatio < 0 || cfg.SkewRatio >= 1 {
		if cfg.SkewRatio != 0 {
			return nil, fmt.Errorf("shuffle: Config.SkewRatio = %g, want 0 or (0, 1)", cfg.SkewRatio)
		}
	}
	b := &Buffer{cfg: cfg, parts: make([]partition, cfg.Partitions)}
	if cfg.SkewRatio > 0 {
		b.skew = newSkewState(cfg)
	}
	if cfg.MemoryBudget > 0 {
		// One share per stripe; an Emitter uses the same share as its
		// *total* staging bound, so up to Partitions concurrent map
		// tasks stage at most one budget in aggregate alongside the
		// stripes' one budget.
		b.perPart = cfg.MemoryBudget / int64(cfg.Partitions)
		if b.perPart < 1 {
			b.perPart = 1
		}
	}
	return b, nil
}

// Emit routes one intermediate pair to its destination partition,
// spilling that partition's buffer as a sorted run if it exceeds its
// budget share. Safe for concurrent use; emitters to different
// partitions never share a lock. Spill I/O errors are deferred to
// FinishMap so Emit can keep the error-free signature user Map
// functions expect.
//
// Emissions are visible to reducers whether or not the emitting caller
// later fails. Map tasks the cluster may *retry* must therefore not
// call Emit directly — use a per-task Emitter, which publishes only on
// success, so a failed attempt contributes nothing.
func (b *Buffer) Emit(key, value string) {
	// Routing and byte accounting use the base key even when the record
	// is rerouted to a sub-key: results must land in the base key's
	// partition, and counters stay comparable to an unsplit shuffle.
	d := b.cfg.Partition(key, b.cfg.Partitions)
	storeKey := key
	if b.skew != nil {
		storeKey = b.skew.route(key)
	}
	p := &b.parts[d]
	p.mu.Lock()
	if p.sealed {
		p.mu.Unlock()
		panic("shuffle: Emit after FinishMap")
	}
	if p.err != nil {
		p.mu.Unlock()
		return
	}
	p.pairs = append(p.pairs, kv.Pair{Key: storeKey, Value: value})
	sz := int64(len(key) + len(value))
	p.recs++
	p.netBytes += sz
	p.bytes += sz + pairOverhead
	if b.skew != nil && storeKey == key {
		b.observeLocked(p, key, 1)
	}
	b.maybeSpillLocked(d, p)
}

// maybeSpillLocked checks stripe d's budget share and, when exceeded,
// steals the buffer and spills outside the stripe lock (so other
// emitters only wait for the swap, not disk). Called with p.mu held;
// always returns with it released.
func (b *Buffer) maybeSpillLocked(d int, p *partition) {
	if b.perPart <= 0 || p.bytes <= b.perPart {
		p.mu.Unlock()
		return
	}
	run := p.pairs
	var reused int64
	p.pairs, reused = getRunBuffer()
	p.bytes = 0
	p.mu.Unlock()
	path, n, dur, err := b.writeSpillRun(d, run)
	putRunBuffer(run)
	p.mu.Lock()
	if err != nil {
		if p.err == nil {
			p.err = err
		}
	} else {
		p.runs = append(p.runs, path)
	}
	p.mu.Unlock()
	if err == nil {
		// Stripe contents were already published, so account at once;
		// Emitter staging spills instead account at Publish, keeping
		// discarded attempts out of the metrics.
		b.accountSpills(1, n, dur, reused)
	}
}

// ---------------------------------------------------------------------
// Spill-run buffer reuse. A stolen spill buffer is cleared and pooled
// once its run file is on disk, and the partition that spilled refills
// a recycled buffer — so a budget-bound map phase reaches a steady
// state of a few full-grown buffers instead of re-growing one from nil
// per spill.
// ---------------------------------------------------------------------

var runBufPool sync.Pool // of *[]kv.Pair

// getRunBuffer returns an empty pair buffer to refill — recycled
// capacity when the pool has any (reused=1), nil otherwise.
func getRunBuffer() (buf []kv.Pair, reused int64) {
	v := runBufPool.Get()
	if v == nil {
		return nil, 0
	}
	buf = (*v.(*[]kv.Pair))[:0]
	if cap(buf) == 0 {
		return nil, 0
	}
	return buf, 1
}

// putRunBuffer clears a spilled buffer (releasing its string
// references) and pools its capacity for the next spill.
func putRunBuffer(run []kv.Pair) {
	if cap(run) == 0 {
		return
	}
	clear(run)
	run = run[:0]
	runBufPool.Put(&run)
}

// writeSpillRun sorts one buffer and writes it as a uniquely named run
// file in partition d's scratch dir, returning the encoded size and
// sort+write duration. Accounting is the caller's responsibility.
func (b *Buffer) writeSpillRun(d int, run []kv.Pair) (string, int64, time.Duration, error) {
	start := time.Now()
	kv.SortPairs(run)
	path := filepath.Join(b.cfg.ScratchDir(d), fmt.Sprintf("run-%06d.spill", b.runSeq.Add(1)))
	n, err := writeRun(path, run)
	if err != nil {
		return "", 0, 0, err
	}
	return path, n, time.Since(start), nil
}

// accountSpills records spill counters and sort-stage time.
func (b *Buffer) accountSpills(runs, bytes int64, dur time.Duration, reuse int64) {
	if b.cfg.Report == nil || runs == 0 {
		return
	}
	b.cfg.Report.Add(metrics.CounterSpillRuns, runs)
	b.cfg.Report.Add(metrics.CounterSpillBytes, bytes)
	if reuse > 0 {
		b.cfg.Report.Add(metrics.CounterSpillReuse, reuse)
	}
	b.cfg.Report.AddStage(metrics.StageSort, dur)
	b.sortNanos.Add(int64(dur))
}

// removeFiles deletes paths, returning the first real error.
func removeFiles(paths []string) error {
	var first error
	for _, path := range paths {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

func writeRun(path string, run []kv.Pair) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := encodeRun(f, run)
	if err != nil {
		f.Close()
		os.Remove(path) // never leave a torn run behind
		return n, err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return n, err
	}
	return n, nil
}

// encodeRun streams a sorted run through a large (256 KiB) write
// buffer: spill files are written in few, big syscalls, which is most
// of the cost of running under a tight shuffle memory budget.
func encodeRun(w io.Writer, run []kv.Pair) (int64, error) {
	enc := kv.NewWriterSize(w, 256<<10)
	for _, p := range run {
		if err := enc.WritePair(p); err != nil {
			return enc.Bytes, err
		}
	}
	return enc.Bytes, enc.Flush()
}

// FinishMap seals the buffers after the map phase. It returns the first
// deferred spill error, if any. Emit panics after FinishMap.
func (b *Buffer) FinishMap() error {
	var detected int
	if b.skew != nil {
		// Freeze the split set before sealing: every reducer locks a
		// stripe mutex sealed below before reading the frozen map, so
		// the seal loop publishes it.
		detected = b.skew.freeze()
	}
	var first error
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		p.sealed = true
		if p.err != nil && first == nil {
			first = p.err
		}
		p.mu.Unlock()
	}
	if b.skew != nil && b.cfg.Report != nil {
		b.cfg.Report.Add(metrics.CounterHotKeysDetected, int64(detected))
		b.cfg.Report.Add(metrics.CounterHotKeySplitRecords, b.skew.splitRecs.Load())
	}
	return first
}

// Records returns the total intermediate records emitted
// ("map.records.out").
func (b *Buffer) Records() int64 {
	var n int64
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		n += p.recs
		p.mu.Unlock()
	}
	return n
}

// Bytes returns the total key+value bytes emitted ("shuffle.bytes", the
// simulated network transfer of the shuffle).
func (b *Buffer) Bytes() int64 {
	var n int64
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		n += p.netBytes
		p.mu.Unlock()
	}
	return n
}

// SortDuration returns the cumulative time attributed to StageSort so
// far (spill sort+write, residue sort; see Buffer.sortNanos). Drivers
// that time map/reduce task windows around Emit/Reduce calls subtract
// it so Report.Total() counts the sort work exactly once — see
// Iteration.Run and the one-step engine's delta refresh.
func (b *Buffer) SortDuration() time.Duration {
	return time.Duration(b.sortNanos.Load())
}

// SpilledRuns returns how many sorted runs were spilled to disk.
func (b *Buffer) SpilledRuns() int64 {
	var n int64
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		n += int64(len(p.runs))
		p.mu.Unlock()
	}
	return n
}

// mergeFanIn caps how many run files one merge pass opens at once
// (Hadoop's io.sort.factor). It bounds both file descriptors and
// reader-buffer memory (mergeFanIn x 64 KiB) no matter how many runs a
// tiny budget produced; partitions with more runs are first compacted
// by intermediate merge passes.
const mergeFanIn = 64

// Reduce streams partition d's merged, grouped intermediate data:
// spilled runs and the in-memory residue k-way merge into one
// (key, value)-ordered stream that is grouped per distinct key. Memory
// use is at most mergeFanIn buffered readers plus the residue. The
// value order inside each group equals kv.SortPairs order, independent
// of spills (intermediate merge passes preserve it, so compaction
// cannot change results).
//
// Distinct partitions may Reduce concurrently (the cluster runs reduce
// tasks in parallel); concurrent Reduce calls for the *same* partition
// are not supported — matching the engines, which run exactly one
// reduce task per partition (retries are sequential).
//
// With hot-key splitting or a Combine configured, the raw stream first
// passes through a collator (hotkeys.go) that reassembles split groups
// and applies the combine, so callers always observe one group per
// logical key.
func (b *Buffer) Reduce(d int, yield func(g kv.Group) error) error {
	if b.skew != nil || b.cfg.Combine != nil {
		c := b.newCollator(yield)
		if err := b.reduceRaw(d, c.add); err != nil {
			return err
		}
		return c.close()
	}
	return b.reduceRaw(d, yield)
}

// reduceRaw streams the partition's merged groups with sub-keys intact.
func (b *Buffer) reduceRaw(d int, yield func(g kv.Group) error) error {
	if d < 0 || d >= len(b.parts) {
		return fmt.Errorf("shuffle: Reduce(%d) with %d partitions", d, len(b.parts))
	}
	p := &b.parts[d]
	p.mu.Lock()
	if !p.sealed {
		p.mu.Unlock()
		return errors.New("shuffle: Reduce before FinishMap")
	}
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	if !p.sorted {
		start := time.Now()
		kv.SortPairs(p.pairs)
		p.sorted = true
		if b.cfg.Report != nil {
			d := time.Since(start)
			b.cfg.Report.AddStage(metrics.StageSort, d)
			b.sortNanos.Add(int64(d))
		}
	}
	residue := p.pairs
	p.mu.Unlock()

	// Compact down to at most mergeFanIn runs. Each pass merges one
	// batch into a new run file and updates p.runs under the stripe
	// lock, so Close always sees the current file set (and a retried
	// reduce attempt resumes from a consistent state).
	for {
		p.mu.Lock()
		if len(p.runs) <= mergeFanIn {
			runs := append([]string(nil), p.runs...)
			p.mu.Unlock()
			return b.mergeAndGroup(runs, residue, yield)
		}
		batch := append([]string(nil), p.runs[:mergeFanIn]...)
		p.mu.Unlock()

		start := time.Now()
		merged := filepath.Join(b.cfg.ScratchDir(d), fmt.Sprintf("merge-%06d.spill", b.runSeq.Add(1)))
		if err := mergeRunFiles(batch, merged); err != nil {
			return err
		}
		p.mu.Lock()
		p.runs = append(p.runs[mergeFanIn:], merged)
		p.mu.Unlock()
		for _, path := range batch {
			os.Remove(path)
		}
		if b.cfg.Report != nil {
			dur := time.Since(start)
			b.cfg.Report.AddStage(metrics.StageSort, dur)
			b.sortNanos.Add(int64(dur))
		}
	}
}

// mergeAndGroup streams the final merge of run files plus the sorted
// in-memory residue into grouped yields.
func (b *Buffer) mergeAndGroup(runs []string, residue []kv.Pair, yield func(g kv.Group) error) error {
	if len(runs) == 0 {
		return kv.GroupStream(kv.NewSliceSource(residue), yield)
	}
	sources := make([]kv.PairSource, 0, len(runs)+1)
	files := make([]*os.File, 0, len(runs))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range runs {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		files = append(files, f)
		sources = append(sources, kv.ReaderSource{R: kv.NewReader(f)})
	}
	sources = append(sources, kv.NewSliceSource(residue))
	m, err := kv.NewMergerByKeyValue(sources...)
	if err != nil {
		return err
	}
	return kv.GroupStream(m, yield)
}

// mergeRunFiles merges sorted run files into one new sorted run file,
// streaming (no full materialization).
func mergeRunFiles(paths []string, out string) error {
	sources := make([]kv.PairSource, 0, len(paths))
	files := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		files = append(files, f)
		sources = append(sources, kv.ReaderSource{R: kv.NewReader(f)})
	}
	m, err := kv.NewMergerByKeyValue(sources...)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := kv.NewWriter(f)
	for {
		pr, err := m.Next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = w.WritePair(pr)
		}
		if err != nil {
			f.Close()
			os.Remove(out)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(out)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(out)
		return err
	}
	return nil
}

// Close removes all spilled run files and their (then-empty)
// per-partition spill directories. The Buffer is unusable after.
func (b *Buffer) Close() error {
	var first error
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		runs := p.runs
		p.runs = nil
		p.pairs = nil
		p.sealed = true
		p.mu.Unlock()
		if err := removeFiles(runs); err != nil && first == nil {
			first = err
		}
		if b.cfg.ScratchDir != nil {
			// Best-effort: drops the (now empty) spill directory; a
			// no-op when it was never created or something else still
			// lives in it.
			os.Remove(b.cfg.ScratchDir(i))
		}
	}
	return first
}
