package shuffle

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"i2mapreduce/internal/cluster"
	"i2mapreduce/internal/kv"
	"i2mapreduce/internal/metrics"
)

// collectGroups drains every partition of b into one flat list of
// groups tagged with their partition.
func collectGroups(t *testing.T, b *Buffer, parts int) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for p := 0; p < parts; p++ {
		err := b.Reduce(p, func(g kv.Group) error {
			if _, dup := out[g.Key]; dup {
				return fmt.Errorf("key %q grouped in two partitions", g.Key)
			}
			out[g.Key] = append([]string(nil), g.Values...)
			return nil
		})
		if err != nil {
			t.Fatalf("Reduce(%d): %v", p, err)
		}
	}
	return out
}

// referenceGroups computes the expected grouping the old engines
// produced: all pairs sorted by (key, value), then grouped.
func referenceGroups(pairs []kv.Pair) map[string][]string {
	sorted := append([]kv.Pair(nil), pairs...)
	kv.SortPairs(sorted)
	out := make(map[string][]string)
	for _, p := range sorted {
		out[p.Key] = append(out[p.Key], p.Value)
	}
	return out
}

func testPairs(n int) []kv.Pair {
	ps := make([]kv.Pair, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, kv.Pair{
			Key:   fmt.Sprintf("k%03d", i%37),
			Value: fmt.Sprintf("v%04d", (i*2654435761)%1000),
		})
	}
	return ps
}

func groupsEqual(t *testing.T, got, want map[string][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("missing key %q", k)
		}
		if len(gv) != len(wv) {
			t.Fatalf("key %q: got %d values, want %d", k, len(gv), len(wv))
		}
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("key %q value[%d] = %q, want %q (value order must match SortPairs order)", k, i, gv[i], wv[i])
			}
		}
	}
}

// TestGroupsMatchSortedReferenceAcrossBudgets proves the core
// determinism property: at any memory budget — none, tiny (every pair
// spills), or mid — the grouped stream is byte-identical to sorting
// everything in memory.
func TestGroupsMatchSortedReferenceAcrossBudgets(t *testing.T) {
	pairs := testPairs(3000)
	want := referenceGroups(pairs)
	for _, budget := range []int64{0, 1, 64, 1 << 10, 1 << 20} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			rep := &metrics.Report{}
			b, err := New(Config{
				Partitions:   4,
				MemoryBudget: budget,
				ScratchDir:   func(p int) string { return filepath.Join(dir, fmt.Sprintf("p%d", p)) },
				Report:       rep,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			for _, p := range pairs {
				b.Emit(p.Key, p.Value)
			}
			if err := b.FinishMap(); err != nil {
				t.Fatal(err)
			}
			groupsEqual(t, collectGroups(t, b, 4), want)
			if b.Records() != int64(len(pairs)) {
				t.Fatalf("Records() = %d, want %d", b.Records(), len(pairs))
			}
			spilled := rep.Counter(metrics.CounterSpillRuns)
			if budget > 0 && budget <= 64 && spilled == 0 {
				t.Fatalf("budget %d spilled no runs", budget)
			}
			if budget == 0 && spilled != 0 {
				t.Fatalf("unbounded budget spilled %d runs", spilled)
			}
			if (spilled == 0) != (rep.Counter(metrics.CounterSpillBytes) == 0) {
				t.Fatalf("spill counters disagree: runs=%d bytes=%d", spilled, rep.Counter(metrics.CounterSpillBytes))
			}
		})
	}
}

// TestConcurrentEmitAndSpill exercises the lock-striped emit path and
// concurrent spilling from many goroutines; run with -race it is the
// issue's required race-mode coverage of emit/spill.
func TestConcurrentEmitAndSpill(t *testing.T) {
	dir := t.TempDir()
	rep := &metrics.Report{}
	const workers, perWorker = 8, 500
	b, err := New(Config{
		Partitions:   3,
		MemoryBudget: 256, // tiny: force frequent concurrent spills
		ScratchDir:   func(p int) string { return filepath.Join(dir, fmt.Sprintf("p%d", p)) },
		Report:       rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var all []kv.Pair
	var allMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]kv.Pair, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("k%03d", (w*perWorker+i)%53)
				v := fmt.Sprintf("w%d-%04d", w, i)
				b.Emit(k, v)
				local = append(local, kv.Pair{Key: k, Value: v})
			}
			allMu.Lock()
			all = append(all, local...)
			allMu.Unlock()
		}()
	}
	wg.Wait()
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	if b.Records() != workers*perWorker {
		t.Fatalf("Records() = %d, want %d", b.Records(), workers*perWorker)
	}
	if rep.Counter(metrics.CounterSpillRuns) == 0 {
		t.Fatal("no spills under a 256-byte budget")
	}
	groupsEqual(t, collectGroups(t, b, 3), referenceGroups(all))
}

// TestConcurrentReduce drains all partitions concurrently (the cluster
// runs reduce tasks in parallel); with -race this covers the read path.
func TestConcurrentReduce(t *testing.T) {
	dir := t.TempDir()
	b, err := New(Config{
		Partitions:   4,
		MemoryBudget: 128,
		ScratchDir:   func(p int) string { return filepath.Join(dir, fmt.Sprintf("p%d", p)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	pairs := testPairs(2000)
	for _, p := range pairs {
		b.Emit(p.Key, p.Value)
	}
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	counts := make([]int64, 4)
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[p] = b.Reduce(p, func(g kv.Group) error {
				counts[p] += int64(len(g.Values))
				return nil
			})
		}()
	}
	wg.Wait()
	var total int64
	for p := 0; p < 4; p++ {
		if errs[p] != nil {
			t.Fatalf("Reduce(%d): %v", p, errs[p])
		}
		total += counts[p]
	}
	if total != int64(len(pairs)) {
		t.Fatalf("reduced %d values, want %d", total, len(pairs))
	}
}

func TestSpillFilesRemovedOnClose(t *testing.T) {
	dir := t.TempDir()
	b, err := New(Config{
		Partitions:   2,
		MemoryBudget: 1,
		ScratchDir:   func(p int) string { return filepath.Join(dir, fmt.Sprintf("p%d", p)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b.Emit(fmt.Sprintf("k%d", i), "v")
	}
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	if b.SpilledRuns() == 0 {
		t.Fatal("expected spills")
	}
	var before int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			before++
		}
		return nil
	})
	if before == 0 {
		t.Fatal("no spill files on disk before Close")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			t.Fatalf("spill file %s survived Close", path)
		}
		return nil
	})
	// The per-partition spill directories are cleaned up too, so
	// long-lived node scratch does not accumulate empty dirs.
	for p := 0; p < 2; p++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("p%d", p))); !os.IsNotExist(err) {
			t.Fatalf("spill dir p%d survived Close (err=%v)", p, err)
		}
	}
}

func TestLifecycleErrors(t *testing.T) {
	if _, err := New(Config{Partitions: 0}); err == nil {
		t.Fatal("New with 0 partitions succeeded")
	}
	if _, err := New(Config{Partitions: 2, MemoryBudget: 1}); err == nil {
		t.Fatal("New with budget but no ScratchDir succeeded")
	}
	b, err := New(Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Reduce(0, func(kv.Group) error { return nil }); err == nil {
		t.Fatal("Reduce before FinishMap succeeded")
	}
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Emit after FinishMap did not panic")
		}
	}()
	b.Emit("k", "v")
}

// TestEmitterDiscardLeavesNoTrace stages output for a failing attempt,
// discards it, then publishes a fresh attempt: reducers must see only
// the successful attempt's pairs (no duplication, no orphan spills).
func TestEmitterDiscardLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	rep := &metrics.Report{}
	b, err := New(Config{
		Partitions:   2,
		MemoryBudget: 64, // force staging spills in both attempts
		ScratchDir:   func(p int) string { return filepath.Join(dir, fmt.Sprintf("p%d", p)) },
		Report:       rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var want []kv.Pair
	for i := 0; i < 200; i++ {
		want = append(want, kv.Pair{Key: fmt.Sprintf("k%02d", i%17), Value: fmt.Sprintf("v%03d", i)})
	}

	// Attempt 1: emits half, then "fails".
	failed := b.NewEmitter()
	for _, p := range want[:100] {
		failed.Emit(p.Key, p.Value)
	}
	failed.Discard()
	// A discarded attempt leaves no trace in the spill metrics either.
	if got := rep.Counter(metrics.CounterSpillRuns); got != 0 {
		t.Fatalf("discarded attempt accounted %d spill runs", got)
	}

	// Attempt 2 (the retry): emits everything and succeeds.
	retry := b.NewEmitter()
	for _, p := range want {
		retry.Emit(p.Key, p.Value)
	}
	if err := retry.Publish(); err != nil {
		t.Fatal(err)
	}
	if rep.Counter(metrics.CounterSpillRuns) == 0 {
		t.Fatal("published attempt's staging spills not accounted")
	}
	if err := b.FinishMap(); err != nil {
		t.Fatal(err)
	}
	if b.Records() != int64(len(want)) {
		t.Fatalf("Records() = %d, want %d (failed attempt must not count)", b.Records(), len(want))
	}
	groupsEqual(t, collectGroups(t, b, 2), referenceGroups(want))
}

// TestDriverRetryDoesNotDuplicate fails every partition's first map
// attempt mid-emission; the cluster retries, and the reduced counts
// must reflect exactly one successful attempt per partition.
func TestDriverRetryDoesNotDuplicate(t *testing.T) {
	root := t.TempDir()
	cl, err := cluster.New(cluster.Config{Nodes: 2, SlotsPerNode: 2, ScratchRoot: filepath.Join(root, "scratch")})
	if err != nil {
		t.Fatal(err)
	}
	const parts = 2
	var attempts [parts]int
	var attemptsMu sync.Mutex
	rep := &metrics.Report{}
	counts := make(map[string]int)
	var countsMu sync.Mutex
	err = Iteration{
		Name:         "retry/it001",
		Partitions:   parts,
		NumNodes:     cl.NumNodes(),
		RunTasks:     func(ts []cluster.Task) error { _, err := cl.Run(ts); return err },
		MemoryBudget: 64,
		ScratchDir:   func(p int) string { return filepath.Join(root, "spill", fmt.Sprintf("p%d", p)) },
		Report:       rep,
		MapPartition: func(p int, emit func(k, v string)) (int64, error) {
			attemptsMu.Lock()
			attempts[p]++
			first := attempts[p] == 1
			attemptsMu.Unlock()
			for i := 0; i < 100; i++ {
				emit(fmt.Sprintf("k%02d-%d", i%11, p), "1")
				if first && i == 50 {
					return 0, fmt.Errorf("transient failure (partition %d attempt 1)", p)
				}
			}
			return 100, nil
		},
		ReducePartition: func(p int, groups GroupSource) error {
			return groups(func(g kv.Group) error {
				countsMu.Lock()
				counts[g.Key] += len(g.Values)
				countsMu.Unlock()
				return nil
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for k, n := range counts {
		total += n
		if n > 10 {
			t.Fatalf("key %q has %d values; failed first attempts leaked emissions", k, n)
		}
	}
	if total != parts*100 {
		t.Fatalf("reduced %d values, want %d (exactly one successful attempt per partition)", total, parts*100)
	}
	if got := rep.Counter("map.records.out"); got != parts*100 {
		t.Fatalf("map.records.out = %d, want %d", got, parts*100)
	}
	// The sort-time rebalance must only subtract time from successful
	// map windows; a negative StageMap means a discarded attempt's
	// sorts leaked into the accounting.
	if d := rep.Snapshot().Stages[metrics.StageMap]; d < 0 {
		t.Fatalf("StageMap = %v; discarded attempts corrupted the stage rebalance", d)
	}
}

// TestIterationDriver runs the full map -> shuffle -> reduce
// scaffolding on a real simulated cluster: word counting with one map
// partition per input shard.
func TestIterationDriver(t *testing.T) {
	root := t.TempDir()
	cl, err := cluster.New(cluster.Config{Nodes: 3, SlotsPerNode: 2, ScratchRoot: filepath.Join(root, "scratch")})
	if err != nil {
		t.Fatal(err)
	}
	const parts = 3
	inputs := make([][]kv.Pair, parts)
	var all []kv.Pair
	for i := 0; i < 900; i++ {
		p := kv.Pair{Key: fmt.Sprintf("w%03d", i%41), Value: "1"}
		inputs[i%parts] = append(inputs[i%parts], p)
		all = append(all, p)
	}
	rep := &metrics.Report{}
	got := make(map[string]int)
	var gotMu sync.Mutex
	err = Iteration{
		Name:         "wordcount/it001",
		Partitions:   parts,
		NumNodes:     cl.NumNodes(),
		RunTasks:     func(ts []cluster.Task) error { _, err := cl.Run(ts); return err },
		MemoryBudget: 512,
		ScratchDir:   func(p int) string { return filepath.Join(root, "spill", fmt.Sprintf("p%d", p)) },
		Report:       rep,
		MapPartition: func(p int, emit func(k, v string)) (int64, error) {
			for _, pr := range inputs[p] {
				emit(pr.Key, pr.Value)
			}
			return int64(len(inputs[p])), nil
		},
		ReducePartition: func(p int, groups GroupSource) error {
			return groups(func(g kv.Group) error {
				if kv.Partition(g.Key, parts) != p {
					return fmt.Errorf("key %q in wrong partition %d", g.Key, p)
				}
				gotMu.Lock()
				got[g.Key] = len(g.Values)
				gotMu.Unlock()
				return nil
			})
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceGroups(all)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, vs := range want {
		if got[k] != len(vs) {
			t.Fatalf("count[%s] = %d, want %d", k, got[k], len(vs))
		}
	}
	if rep.Counter("map.records.in") != int64(len(all)) {
		t.Fatalf("map.records.in = %d, want %d", rep.Counter("map.records.in"), len(all))
	}
	if rep.Counter("map.records.out") != int64(len(all)) {
		t.Fatalf("map.records.out = %d, want %d", rep.Counter("map.records.out"), len(all))
	}
	if rep.Counter("shuffle.bytes") == 0 {
		t.Fatal("shuffle.bytes not accounted")
	}
	if rep.Counter(metrics.CounterSpillRuns) == 0 {
		t.Fatal("512-byte budget spilled no runs")
	}
}
