// Command doclint is a stdlib-only doc-comment linter for the repo's
// public surface: every exported top-level declaration in the packages
// it is pointed at must carry a doc comment. It exists because the repo
// cannot install third-party linters (revive, golint) — the Makefile
// lint target runs it with `go run`, needing nothing beyond the Go
// toolchain.
//
// Usage:
//
//	go run ./internal/tools/doclint DIR [DIR ...]
//
// Each DIR is one package directory (not recursive). Checked: exported
// types, funcs, and methods on exported receivers, plus exported const/
// var specs (a comment on the enclosing decl block covers its specs).
// _test.go files are skipped. Exit status 1 with one line per missing
// comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint DIR [DIR ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported declarations without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns one message per
// undocumented exported declaration.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a func decl is a plain function or a
// method whose receiver type is itself exported (methods on unexported
// types are not public surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// lintGenDecl checks a type/const/var declaration. For const and var,
// a doc comment on the decl block covers every spec in it; otherwise
// each exported spec needs its own doc or trailing comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok == token.IMPORT {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil {
				continue // block comment covers the group
			}
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
