package main

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// atomicwriteAnalyzer enforces the repo's durable-commit convention:
// every file commit goes through internal/fsutil (WriteFileAtomic for
// buffered payloads, RenameCommit for streamed temp files), which
// fsyncs the file and its directory so the commit survives a crash.
// PR-3 replaced four hand-rolled temp+rename sequences that each got a
// different subset of the fsync dance wrong; this analyzer keeps new
// ones from appearing. It flags direct calls to os.Rename and
// os.WriteFile, and os.Create of a ".tmp"-suffixed path (the start of a
// hand-rolled commit sequence), everywhere except internal/fsutil
// itself. Intentionally non-durable writes (node-local scratch, WAL
// appends with their own fsync protocol) carry //i2vet:allow
// atomicwrite directives explaining why.
var atomicwriteAnalyzer = &analyzer{
	name: "atomicwrite",
	doc:  "flag raw os.Rename/os.WriteFile/create-of-.tmp commit sequences outside internal/fsutil",
}

func init() { atomicwriteAnalyzer.run = runAtomicwrite }

func runAtomicwrite(p *pass) {
	if p.pkgIs("internal/fsutil") {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case p.stdFuncCall(call, "os", "Rename"):
				p.report(atomicwriteAnalyzer, call.Pos(),
					"os.Rename commits a file without fsync; use fsutil.RenameCommit (streamed temp file) or fsutil.WriteFileAtomic")
			case p.stdFuncCall(call, "os", "WriteFile"):
				p.report(atomicwriteAnalyzer, call.Pos(),
					"os.WriteFile is torn by a crash mid-write; use fsutil.WriteFileAtomic")
			case p.stdFuncCall(call, "os", "Create") && len(call.Args) == 1 && mentionsTmpSuffix(call.Args[0]):
				p.report(atomicwriteAnalyzer, call.Pos(),
					"os.Create of a \".tmp\" path starts a hand-rolled commit sequence; use fsutil.WriteFileAtomic or commit via fsutil.RenameCommit")
			}
			return true
		})
	}
}

// mentionsTmpSuffix reports whether the expression syntactically
// involves a string literal ending in ".tmp" — the naming convention of
// every hand-rolled temp-then-rename sequence this repo has had.
func mentionsTmpSuffix(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.HasSuffix(s, ".tmp") {
				found = true
			}
		}
		return !found
	})
	return found
}
