package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errcloseAnalyzer guards the durability plane's error discipline: on a
// writable file, Close/Sync (*os.File) and Flush (*bufio.Writer) are
// where buffered write errors finally surface — dropping them means a
// checkpoint can "succeed" with a torn segment behind it (the PR-3
// hardening round fixed exactly this class of bug in the manifest
// writers). The analyzer flags statement-level calls whose error result
// is discarded. Cleanup calls on a path that is already reporting an
// error are exempt: the body of an `if err != nil` branch, a close
// immediately followed by `return ..., <non-nil error>`, and deferred
// cleanup (a `defer x.Close()` or a close inside a deferred closure) —
// there the first error is already propagating and the close is
// best-effort teardown.
var errcloseAnalyzer = &analyzer{
	name: "errclose",
	doc:  "flag discarded errors from Close/Sync on *os.File and Flush on *bufio.Writer",
}

func init() { errcloseAnalyzer.run = runErrclose }

func runErrclose(p *pass) {
	for _, f := range p.files {
		// Walk with an explicit parent stack so a flagged statement can
		// be tested for "inside an error-handling branch".
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := p.info.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			var what string
			switch sel.Sel.Name {
			case "Close", "Sync":
				if receiverNamed(recv, "os", "File") {
					what = "os.File." + sel.Sel.Name
				}
			case "Flush":
				if receiverNamed(recv, "bufio", "Writer") {
					what = "bufio.Writer.Flush"
				}
			}
			if what == "" || inErrorBranch(p, stack) || inDeferredCleanup(stack) || beforeErrorReturn(stack) {
				return true
			}
			p.report(errcloseAnalyzer, stmt.Pos(), fmt.Sprintf(
				"%s error discarded; buffered write errors surface here — check it (or annotate //i2vet:allow errclose on a best-effort path)", what))
			return true
		})
	}
}

// inErrorBranch reports whether the innermost statement of the stack
// sits inside an if/else branch whose condition tests an error value
// against nil — the canonical cleanup-on-failure shape, where the close
// is best-effort because an error is already being propagated.
func inErrorBranch(p *pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condTestsError(p, ifStmt.Cond) {
			return true
		}
	}
	return false
}

// inDeferredCleanup reports whether the statement runs inside a
// function literal that is itself deferred — the `defer func() { ...
// f.Close() ... }()` teardown idiom, where close errors cannot change
// the function's outcome anyway.
func inDeferredCleanup(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		fl, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			if d, ok := stack[j].(*ast.DeferStmt); ok {
				if call, ok2 := d.Call.Fun.(*ast.FuncLit); ok2 && call == fl {
					return true
				}
			}
		}
	}
	return false
}

// beforeErrorReturn reports whether the statement's immediately
// following sibling is a return whose final result is not the nil
// identifier — the `f.Close(); return nil, fmt.Errorf(...)` error-exit
// shape, where an error is already being reported.
func beforeErrorReturn(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	stmt := stack[len(stack)-1]
	block, ok := stack[len(stack)-2].(*ast.BlockStmt)
	if !ok {
		return false
	}
	for i, s := range block.List {
		if s != stmt || i+1 >= len(block.List) {
			continue
		}
		ret, ok := block.List[i+1].(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return false
		}
		last := ret.Results[len(ret.Results)-1]
		if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
			return false
		}
		return true
	}
	return false
}

// condTestsError reports whether the condition compares an error-typed
// expression with nil (on either side of == or !=, possibly nested in
// && / || / parentheses).
func condTestsError(p *pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		if bin.Op.String() != "==" && bin.Op.String() != "!=" {
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if t := p.info.TypeOf(side); t != nil && isErrorType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isErrorType reports whether t implements the built-in error
// interface (which the error interface type itself trivially does).
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface)
}

// errorInterface is the universe error type's interface.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
