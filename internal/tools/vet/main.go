// Command vet ("i2vet") is the repo's stdlib-only invariant-enforcing
// static-analysis suite. Nine PRs of hardening accumulated load-bearing
// conventions — atomic manifest commits via fsutil.WriteFileAtomic,
// byte-identical output ordering at any shard/budget/parallelism,
// metrics counter names as constants in internal/metrics, bounded
// fan-out via par.Do — and i2vet encodes them as machine-checked
// analyzers so they cannot silently rot. Like internal/tools/doclint it
// uses nothing beyond go/parser + go/ast + go/types (source importer),
// preserving the module's zero-dependency go.mod.
//
// Usage:
//
//	go run ./internal/tools/vet [flags] ./... | DIR [DIR ...]
//
// Each analyzer has an enable/disable flag (-atomicwrite=false, ...).
// Diagnostics print as "file:line:col: [analyzer] message"; exit status
// is 1 if any diagnostic survives, 2 on usage/parse/type errors, and a
// per-analyzer count summary always goes to stderr so CI logs show
// regressions at a glance. _test.go files and testdata/ trees are not
// analyzed (tests deliberately write torn files and corrupt bytes).
//
// A finding can be suppressed with a justified allow directive on the
// offending line or the line above:
//
//	//i2vet:allow rawgo long-lived worker pool, not a bounded fan-out
//	//i2vet:allow atomicwrite,errclose scratch spill; re-derivable
//
// The justification text is mandatory — a bare directive is itself a
// diagnostic — so every exemption records why the invariant does not
// apply.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// analyzer is one invariant checker: a name (also its flag and its
// allow-directive key), a one-line doc, and a run function invoked once
// per type-checked package.
type analyzer struct {
	name string
	doc  string
	run  func(p *pass)
}

// analyzers lists every registered analyzer in stable (alphabetical)
// order. The driver derives flags, directive keys, and the summary line
// from this slice.
var analyzers = []*analyzer{
	atomicwriteAnalyzer,
	errcloseAnalyzer,
	maporderAnalyzer,
	metricnameAnalyzer,
	rawgoAnalyzer,
}

// pass is the per-package view handed to each analyzer: the parsed
// files, full type information, and a report sink.
type pass struct {
	fset    *token.FileSet
	pkgPath string // slash-separated import path, module prefix trimmed (e.g. "internal/mrbg")
	pkg     *types.Package
	info    *types.Info
	files   []*ast.File
	report  func(a *analyzer, pos token.Pos, msg string)
}

// diagnostic is one finding, carrying its position for sorting and its
// analyzer for the allow-directive check and the count summary.
type diagnostic struct {
	pos      token.Position
	analyzer string
	msg      string
}

// directiveAnalyzer names the pseudo-analyzer that reports malformed
// //i2vet:allow directives. It cannot be disabled: a broken directive
// silently re-enables nothing and must be fixed.
const directiveAnalyzer = "directive"

func main() {
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.name] = flag.Bool(a.name, true, a.doc)
	}
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: i2vet [flags] ./... | DIR [DIR ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.name, a.doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	on := make(map[string]bool, len(enabled))
	for name, v := range enabled {
		on[name] = *v
	}
	dirs, err := expandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "i2vet: %v\n", err)
		os.Exit(2)
	}
	diags, suppressed, err := analyzeDirs(dirs, on)
	if err != nil {
		fmt.Fprintf(os.Stderr, "i2vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: [%s] %s\n", d.pos.Filename, d.pos.Line, d.pos.Column, d.analyzer, d.msg)
	}
	fmt.Fprintln(os.Stderr, summary(diags, suppressed, on))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// summary renders the per-analyzer diagnostic count line CI greps for,
// e.g. "i2vet: atomicwrite=0 ... suppressed=6 (clean)".
func summary(diags []diagnostic, suppressed int, on map[string]bool) string {
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.analyzer]++
	}
	var b strings.Builder
	b.WriteString("i2vet:")
	for _, a := range analyzers {
		if !on[a.name] {
			fmt.Fprintf(&b, " %s=off", a.name)
			continue
		}
		fmt.Fprintf(&b, " %s=%d", a.name, counts[a.name])
	}
	if n := counts[directiveAnalyzer]; n > 0 {
		fmt.Fprintf(&b, " %s=%d", directiveAnalyzer, n)
	}
	fmt.Fprintf(&b, " suppressed=%d", suppressed)
	if len(diags) == 0 {
		b.WriteString(" (clean)")
	} else {
		fmt.Fprintf(&b, " (%d diagnostics)", len(diags))
	}
	return b.String()
}

// expandPatterns turns the command-line arguments into package
// directories. "DIR/..." (and the bare "./...") walk recursively for
// directories holding at least one non-test .go file; anything else is
// taken as one package directory. testdata trees and dot/underscore
// directories are skipped, exactly as the go tool does.
func expandPatterns(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "...")
		if !recursive {
			add(arg)
			continue
		}
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// analyzeDirs parses and type-checks every package directory and runs
// the enabled analyzers over it, returning position-sorted diagnostics
// and the count of findings suppressed by valid allow directives. One
// source importer is shared across packages so each dependency (stdlib
// included) is type-checked once per run.
func analyzeDirs(dirs []string, on map[string]bool) ([]diagnostic, int, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var diags []diagnostic
	suppressed := 0
	for _, dir := range dirs {
		ds, sup, err := analyzePackage(fset, imp, dir, pkgPathFor(dir), on)
		if err != nil {
			return nil, 0, err
		}
		diags = append(diags, ds...)
		suppressed += sup
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	return diags, suppressed, nil
}

// pkgPathFor maps a directory to the module-relative package path the
// analyzers match against ("internal/mrbg"; the module root maps to
// ""). The go.mod is located by walking up from the directory, so the
// mapping holds whether the tool runs from the repo root (the CI
// invocation) or a test passes absolute directories.
func pkgPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return filepath.ToSlash(filepath.Clean(dir))
		}
		root = parent
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return ""
	}
	return filepath.ToSlash(rel)
}

// analyzePackage checks one package directory. Type errors are hard
// failures: the repo builds cleanly, so a type error here means the
// invocation is wrong, not the code.
func analyzePackage(fset *token.FileSet, imp types.Importer, dir, pkgPath string, on map[string]bool) ([]diagnostic, int, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, 0, err
	}
	var diags []diagnostic
	suppressed := 0
	for _, pkg := range pkgs {
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(pkgPath, fset, files, info)
		if err != nil && len(typeErrs) > 0 {
			return nil, 0, fmt.Errorf("type-checking %s: %v (first of %d)", dir, typeErrs[0], len(typeErrs))
		} else if err != nil {
			return nil, 0, fmt.Errorf("type-checking %s: %v", dir, err)
		}
		allows, dirDiags := parseDirectives(fset, files)
		diags = append(diags, dirDiags...)
		p := &pass{
			fset:    fset,
			pkgPath: pkgPath,
			pkg:     tpkg,
			info:    info,
			files:   files,
			report: func(a *analyzer, pos token.Pos, msg string) {
				position := fset.Position(pos)
				if allows.covers(position, a.name) {
					suppressed++
					return
				}
				diags = append(diags, diagnostic{pos: position, analyzer: a.name, msg: msg})
			},
		}
		for _, a := range analyzers {
			if on[a.name] {
				a.run(p)
			}
		}
	}
	return diags, suppressed, nil
}

// allowSet records which (file, line, analyzer) triples are covered by
// a justified //i2vet:allow directive. A directive covers its own line
// and the following line, so it works both as a trailing comment and as
// a comment immediately above the statement.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(file string, line int, name string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	for _, l := range []int{line, line + 1} {
		if lines[l] == nil {
			lines[l] = make(map[string]bool)
		}
		lines[l][name] = true
	}
}

func (s allowSet) covers(pos token.Position, name string) bool {
	return s[pos.Filename][pos.Line][name]
}

// parseDirectives scans every comment for //i2vet:allow directives.
// Malformed directives — an unknown analyzer name, or a missing
// justification — are diagnostics themselves, reported under the
// non-disableable "directive" pseudo-analyzer.
func parseDirectives(fset *token.FileSet, files []*ast.File) (allowSet, []diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.name] = true
	}
	allows := make(allowSet)
	var diags []diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diagnostic{
			pos:      fset.Position(pos),
			analyzer: directiveAnalyzer,
			msg:      fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//i2vet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "allow directive names no analyzer (want //i2vet:allow <analyzer>[,<analyzer>] <justification>)")
					continue
				}
				names := strings.Split(fields[0], ",")
				if len(fields) < 2 {
					bad(c.Pos(), "allow directive for %q has no justification; explain why the invariant does not apply", fields[0])
					continue
				}
				pos := fset.Position(c.Pos())
				okNames := true
				for _, name := range names {
					if !known[name] {
						bad(c.Pos(), "allow directive names unknown analyzer %q", name)
						okNames = false
					}
				}
				if !okNames {
					continue
				}
				for _, name := range names {
					allows.add(pos.Filename, pos.Line, name)
				}
			}
		}
	}
	return allows, diags
}

// pkgIs reports whether the pass's package is exactly one of the given
// module-relative paths.
func (p *pass) pkgIs(paths ...string) bool {
	for _, path := range paths {
		if p.pkgPath == path {
			return true
		}
	}
	return false
}

// useOf resolves an identifier to the object it refers to, or nil.
func (p *pass) useOf(id *ast.Ident) types.Object {
	return p.info.Uses[id]
}

// stdFuncCall reports whether call invokes pkg.name for a standard
// (or any) library package with import path pkgPath, resolving the
// package identifier through the type info so renamed imports and
// shadowed identifiers are handled correctly.
func (p *pass) stdFuncCall(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.useOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// receiverNamed unwraps pointers and reports whether t is the named
// type pkgPath.name.
func receiverNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
