package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// maporderAnalyzer guards the byte-identity invariant: engine output is
// byte-for-byte identical at any shard count, memory budget, or
// parallelism level, which the equivalence tests and the kill-and-
// reopen sweeps all assert. Go's map iteration order is deliberately
// random, so a range-over-map whose body feeds an output path (emit,
// encode, write) produces a different byte order every run. The fix is
// always the same shape: collect the keys, sort them, then iterate the
// sorted slice — the pattern metrics.CounterNames and the manifest
// writers already use. The analyzer flags a range statement over a map
// whose body (function literals included) calls a known output sink;
// loops that only collect into slices or maps pass.
var maporderAnalyzer = &analyzer{
	name: "maporder",
	doc:  "flag range-over-map loops whose body feeds an output sink without sorting first",
}

func init() { maporderAnalyzer.run = runMaporder }

// sinkMethods are method names that commit bytes or records to an
// output in call order. A call to any of these inside a map-ordered
// loop makes the output order nondeterministic.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteDelta": true, "WritePair": true, "WriteTo": true,
	"Encode": true, "EncodePairs": true, "EncodeDelta": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Emit": true, "Append": true, "AppendPair": true,
}

// sinkIdents are bare function/closure names treated as sinks; "emit"
// is the conventional name of the reduce-output closure threaded
// through every engine.
var sinkIdents = map[string]bool{
	"emit": true, "yield": true,
}

func runMaporder(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if name, pos, found := findSink(rng.Body); found {
				p.report(maporderAnalyzer, pos, fmt.Sprintf(
					"map iteration order is random but the loop body calls output sink %q; collect keys, sort, then emit (byte-identity invariant)",
					name))
			}
			return true
		})
	}
}

// findSink walks a loop body (including nested function literals, which
// still run under the loop's iteration order) for the first call to a
// known output sink.
func findSink(body *ast.BlockStmt) (name string, pos token.Pos, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if sinkMethods[fun.Sel.Name] {
				name, pos, found = fun.Sel.Name, call.Pos(), true
			}
		case *ast.Ident:
			if sinkIdents[fun.Name] {
				name, pos, found = fun.Name, call.Pos(), true
			}
		}
		return !found
	})
	return name, pos, found
}
