package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// metricnameAnalyzer enforces the counter-name convention: every
// counter/gauge name passed to the internal/metrics Report API must be
// a named constant declared in internal/metrics. Ad-hoc string literals
// drift (two packages spelling "results.segments" differently would
// silently split one counter in job reports and /stats), and constants
// centralized in one package give every name a doc comment and one
// grep-able registry. Dynamic names built at runtime are out of scope —
// the analyzer cannot prove anything about them — but a plain literal
// or a constant declared elsewhere is always a violation.
var metricnameAnalyzer = &analyzer{
	name: "metricname",
	doc:  "flag metrics counter names that are not named constants from internal/metrics",
}

func init() { metricnameAnalyzer.run = runMetricname }

// metricsPkgSuffix identifies the metrics package by import-path
// suffix, so the check works whatever module path the repo is built
// under.
const metricsPkgSuffix = "internal/metrics"

func runMetricname(p *pass) {
	if p.pkgIs("internal/metrics") {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Add" && sel.Sel.Name != "Counter" {
				return true
			}
			recv := p.info.TypeOf(sel.X)
			if recv == nil || !reportReceiver(recv) {
				return true
			}
			arg := call.Args[0]
			switch a := arg.(type) {
			case *ast.BasicLit:
				if a.Kind == token.STRING {
					p.report(metricnameAnalyzer, a.Pos(), fmt.Sprintf(
						"counter name %s passed to metrics.Report.%s must be a named constant declared in internal/metrics",
						a.Value, sel.Sel.Name))
				}
			default:
				if obj := constObjOf(p, arg); obj != nil && !declaredInMetrics(obj) {
					p.report(metricnameAnalyzer, arg.Pos(), fmt.Sprintf(
						"counter name constant %s is declared in %s; counter names live in internal/metrics",
						obj.Name(), obj.Pkg().Path()))
				}
			}
			return true
		})
	}
}

// reportReceiver reports whether t is metrics.Report (or a pointer to
// it), matching by type name plus package-path suffix.
func reportReceiver(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Report" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), metricsPkgSuffix)
}

// constObjOf resolves an expression to the constant object it names
// (ident or pkg.Sel), or nil for anything that is not a named constant.
func constObjOf(p *pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj := p.useOf(id)
	if _, ok := obj.(*types.Const); !ok {
		return nil
	}
	return obj
}

// declaredInMetrics reports whether the constant lives in the metrics
// package (whose path may or may not carry the module prefix, depending
// on whether it was imported or is the package under analysis).
func declaredInMetrics(obj types.Object) bool {
	return obj.Pkg() == nil || strings.HasSuffix(obj.Pkg().Path(), metricsPkgSuffix)
}
