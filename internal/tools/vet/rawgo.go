package main

import (
	"go/ast"
)

// rawgoAnalyzer keeps the engine and durability packages' concurrency
// funneled through internal/par: PR-8 put every per-partition
// durability loop behind par.Do so one knob (IOParallelism) bounds the
// whole process's concurrent I/O, errors surface in deterministic
// index order, and limit==1 degrades to the byte-identical serial loop
// the crash-consistency tests compare against. A bare `go` statement in
// those packages reintroduces unbounded, order-nondeterministic
// fan-out. Long-lived background loops that are genuinely not fan-out
// (a scheduler's worker pool, the ingestion micro-batch loop) carry
// //i2vet:allow rawgo directives saying so.
var rawgoAnalyzer = &analyzer{
	name: "rawgo",
	doc:  "flag bare go statements in engine/durability packages; bounded fan-out routes through par.Do",
}

func init() { rawgoAnalyzer.run = runRawgo }

// rawgoPackages is the engine/durability set the invariant covers.
// cluster (the task scheduler — goroutines are its core function), par
// itself, and the bench/app driver layers are out of scope.
var rawgoPackages = map[string]bool{
	"internal/mrbg":    true,
	"internal/results": true,
	"internal/core":    true,
	"internal/incr":    true,
	"internal/iter":    true,
	"internal/mr":      true,
	"internal/dfs":     true,
	"internal/shuffle": true,
	"internal/serve":   true,
	"internal/ingest":  true,
}

func runRawgo(p *pass) {
	if !rawgoPackages[p.pkgPath] {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.report(rawgoAnalyzer, g.Pos(),
					"bare go statement in an engine/durability package; route bounded fan-out through par.Do (or annotate //i2vet:allow rawgo for a long-lived background loop)")
			}
			return true
		})
	}
}
