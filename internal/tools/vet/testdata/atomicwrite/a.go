// Package fixture exercises the atomicwrite analyzer: raw rename /
// write-file commit sequences must route through internal/fsutil.
package fixture

import "os"

func commit(data []byte) error {
	if err := os.WriteFile("out.meta", data, 0o644); err != nil { // want "os.WriteFile"
		return err
	}
	f, err := os.Create("out.meta.tmp") // want "commit sequence"
	if err != nil {
		return err
	}
	_ = f.Close()
	return os.Rename("out.meta.tmp", "out.meta") // want "os.Rename"
}

func allowed(data []byte) error {
	//i2vet:allow atomicwrite fixture scratch file, durability is not needed here
	return os.WriteFile("scratch", data, 0o644)
}

func notACommit() (*os.File, error) {
	// Creating a file whose name does not look like a commit temp file
	// is ordinary I/O, not a commit sequence.
	return os.Create("plain.dat")
}
