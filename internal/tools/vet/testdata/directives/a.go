// Package fixture exercises //i2vet:allow directive parsing: the good
// directive suppresses its finding, the malformed ones are reported.
package fixture

import "os"

func good() error {
	//i2vet:allow atomicwrite fixture scratch, durability is deliberately skipped
	return os.Rename("a.tmp", "a")
}

func missingJustification() error {
	//i2vet:allow atomicwrite
	return os.Rename("b.tmp", "b")
}

func unknownName() error {
	//i2vet:allow nosuchanalyzer this analyzer does not exist
	return os.Rename("c.tmp", "c")
}
