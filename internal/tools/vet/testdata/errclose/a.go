// Package fixture exercises the errclose analyzer: Close/Flush/Sync
// errors on writable files must not be silently discarded.
package fixture

import (
	"bufio"
	"errors"
	"os"
)

func bad(f *os.File, w *bufio.Writer) {
	w.Flush() // want "Flush"
	f.Sync()  // want "Sync"
	f.Close() // want "Close"
}

func cleanupPaths(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		f.Close() // ok: deferred cleanup after the flow already decided
	}()
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close() // ok: already on an error branch
		return err
	}
	return f.Close()
}

func errorReturn(f *os.File) error {
	f.Close() // ok: the next statement returns a non-nil error
	return errors.New("failed")
}
