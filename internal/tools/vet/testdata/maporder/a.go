// Package fixture exercises the maporder analyzer: ranging over a map
// while writing to an output sink breaks byte-identical output.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func bad(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order"
	}
}

func nestedBad(w io.Writer, m map[string]int) {
	for k := range m {
		func() {
			_, _ = w.Write([]byte(k)) // want "map iteration order"
		}()
	}
}

func good(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func noSink(m map[string]int) int {
	// Pure aggregation over a map is order-insensitive and fine.
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
