// Package fixture exercises the metricname analyzer: counter names
// passed to metrics.Report must be constants from internal/metrics.
package fixture

import "i2mapreduce/internal/metrics"

const localName = "local.counter"

func record(rep *metrics.Report) {
	rep.Add("adhoc.counter", 1)      // want "named constant"
	rep.Add(localName, 1)            // want "declared in"
	rep.Add(metrics.CounterJobs, 1)  // ok: canonical constant
	_ = rep.Counter("another.adhoc") // want "named constant"

	// Dynamically built names are out of scope for the analyzer; they
	// are rejected at review time instead.
	name := "dyn." + metrics.CounterJobs
	_ = rep.Counter(name)
}
