// Package fixture exercises the rawgo analyzer. The test feeds this
// package to the analyzer under an engine package path (internal/core),
// where bare go statements must route through par.Do.
package fixture

func fanout(n int) {
	for i := 0; i < n; i++ {
		go work(i) // want "bare go statement"
	}
	//i2vet:allow rawgo long-lived fixture worker, not a bounded fan-out
	go work(-1)
}

func work(int) {}
