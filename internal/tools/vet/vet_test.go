package main

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture files:
//
//	fmt.Fprintf(w, ...) // want "map iteration order"
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

// expectations maps "file:line" to the diagnostic substrings the
// fixture declares on that line.
type expectations map[string][]string

func loadExpectations(t *testing.T, dir string) expectations {
	t.Helper()
	want := make(expectations)
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixtures in %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					want[key] = append(want[key], m[1])
				}
			}
		}
	}
	return want
}

// only returns an enable-map with exactly the named analyzers on,
// mirroring what -<name>=false flags produce in main.
func only(names ...string) map[string]bool {
	on := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		on[a.name] = false
	}
	for _, name := range names {
		on[name] = true
	}
	return on
}

func runOnFixture(t *testing.T, dir, pkgPath string, on map[string]bool) ([]diagnostic, int) {
	t.Helper()
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	diags, suppressed, err := analyzePackage(fset, imp, dir, pkgPath, on)
	if err != nil {
		t.Fatalf("analyzePackage(%s): %v", dir, err)
	}
	return diags, suppressed
}

func checkAgainstExpectations(t *testing.T, dir string, diags []diagnostic) {
	t.Helper()
	want := loadExpectations(t, dir)
	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.pos.Filename), d.pos.Line)
		got[key] = append(got[key], d.msg)
	}
	for key, subs := range want {
		msgs := got[key]
		for _, sub := range subs {
			found := false
			for _, msg := range msgs {
				if strings.Contains(msg, sub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: want diagnostic containing %q, got %v", key, sub, msgs)
			}
		}
		if len(msgs) > len(subs) {
			t.Errorf("%s: %d diagnostics but only %d want annotations: %v", key, len(msgs), len(subs), msgs)
		}
	}
	for key, msgs := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected diagnostics %v", key, msgs)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name           string
		pkgPath        string // "" means derive from the directory
		wantSuppressed int
	}{
		{name: "atomicwrite", wantSuppressed: 1},
		{name: "metricname"},
		{name: "maporder"},
		{name: "errclose"},
		// The rawgo fixture is fed to the analyzer under an engine
		// package path, since rawgo only fires in those packages.
		{name: "rawgo", pkgPath: "internal/core", wantSuppressed: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			pkgPath := tc.pkgPath
			if pkgPath == "" {
				pkgPath = pkgPathFor(dir)
			}
			diags, suppressed := runOnFixture(t, dir, pkgPath, only(tc.name))
			checkAgainstExpectations(t, dir, diags)
			if suppressed != tc.wantSuppressed {
				t.Errorf("suppressed = %d, want %d", suppressed, tc.wantSuppressed)
			}
		})
	}
}

// TestRawgoExemptPackage feeds the same goroutine-heavy fixture to the
// analyzer under a package path outside the engine set: no diagnostics.
func TestRawgoExemptPackage(t *testing.T) {
	diags, _ := runOnFixture(t, filepath.Join("testdata", "rawgo"), "internal/cluster", only("rawgo"))
	if len(diags) != 0 {
		t.Errorf("rawgo fired outside the engine package set: %v", diags)
	}
}

// TestDisabledAnalyzer checks the enable-map that the per-analyzer
// flags feed: with everything off, even a violation-dense fixture
// yields no diagnostics.
func TestDisabledAnalyzer(t *testing.T) {
	diags, suppressed := runOnFixture(t, filepath.Join("testdata", "errclose"), "x", only())
	if len(diags) != 0 || suppressed != 0 {
		t.Errorf("disabled run produced diags=%v suppressed=%d", diags, suppressed)
	}
}

func TestDirectiveParsing(t *testing.T) {
	dir := filepath.Join("testdata", "directives")
	diags, suppressed := runOnFixture(t, dir, "x", only("atomicwrite"))
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the justified directive)", suppressed)
	}
	var directiveMsgs, atomicMsgs []string
	for _, d := range diags {
		switch d.analyzer {
		case directiveAnalyzer:
			directiveMsgs = append(directiveMsgs, d.msg)
		case "atomicwrite":
			atomicMsgs = append(atomicMsgs, d.msg)
		}
	}
	if len(directiveMsgs) != 2 {
		t.Fatalf("directive diagnostics = %v, want 2", directiveMsgs)
	}
	joined := strings.Join(directiveMsgs, "\n")
	if !strings.Contains(joined, "no justification") {
		t.Errorf("missing-justification directive not reported: %v", directiveMsgs)
	}
	if !strings.Contains(joined, "unknown analyzer") {
		t.Errorf("unknown-analyzer directive not reported: %v", directiveMsgs)
	}
	// Malformed directives suppress nothing: both their os.Rename
	// calls are still flagged.
	if len(atomicMsgs) != 2 {
		t.Errorf("atomicwrite diagnostics = %v, want 2 (malformed directives must not suppress)", atomicMsgs)
	}
}

func TestExpandPatterns(t *testing.T) {
	dirs, err := expandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "." {
		t.Errorf(`expandPatterns("./...") from the vet package = %v, want ["."]; testdata must be skipped`, dirs)
	}

	dirs, err = expandPatterns([]string{
		filepath.Join("testdata", "errclose"),
		filepath.Join("testdata", "maporder"),
		filepath.Join("testdata", "errclose"), // duplicates collapse
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Errorf("explicit dirs = %v, want 2 unique entries", dirs)
	}

	root := repoRoot(t)
	dirs, err = expandPatterns([]string{filepath.Join(root, "internal", "tools") + string(filepath.Separator) + "..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Errorf("internal/tools/... = %v, want the two tool packages", dirs)
	}
}

// TestMultiPackageRun analyzes two fixture packages in one call and
// checks diagnostics from both come back position-sorted.
func TestMultiPackageRun(t *testing.T) {
	dirs := []string{
		filepath.Join("testdata", "atomicwrite"),
		filepath.Join("testdata", "errclose"),
	}
	diags, _, err := analyzeDirs(dirs, only("atomicwrite", "errclose"))
	if err != nil {
		t.Fatal(err)
	}
	pkgsSeen := make(map[string]bool)
	for _, d := range diags {
		pkgsSeen[filepath.Base(filepath.Dir(d.pos.Filename))] = true
	}
	if !pkgsSeen["atomicwrite"] || !pkgsSeen["errclose"] {
		t.Errorf("multi-package run covered %v, want both fixture packages", pkgsSeen)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.pos.Filename > b.pos.Filename || (a.pos.Filename == b.pos.Filename && a.pos.Line > b.pos.Line) {
			t.Errorf("diagnostics not position-sorted: %v before %v", a.pos, b.pos)
		}
	}
}

// TestRepoClean is the self-check mirrored by CI: the repo's own
// packages must pass every analyzer with zero diagnostics.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	root := repoRoot(t)
	dirs, err := expandPatterns([]string{root + string(filepath.Separator) + "..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expandPatterns found only %d package dirs under the repo root; pattern walk is broken", len(dirs))
	}
	on := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		on[a.name] = true
	}
	diags, _, err := analyzeDirs(dirs, on)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d: [%s] %s", d.pos.Filename, d.pos.Line, d.analyzer, d.msg)
	}
}

// TestCommandLine exercises the real binary: flag handling, the -list
// flag, exit codes, and the summary line.
func TestCommandLine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tool; skipped in -short")
	}
	run := func(args ...string) (string, string, int) {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
		var out, errOut strings.Builder
		cmd.Stdout = &out
		cmd.Stderr = &errOut
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("go run .: %v", err)
		}
		return out.String(), errOut.String(), code
	}

	stdout, _, code := run("-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, a := range analyzers {
		if !strings.Contains(stdout, a.name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.name, stdout)
		}
	}

	stdout, stderr, code := run(filepath.Join("testdata", "errclose"))
	if code != 1 {
		t.Errorf("violating fixture exited %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "[errclose]") {
		t.Errorf("diagnostics missing [errclose] tag:\n%s", stdout)
	}
	if !strings.Contains(stderr, "errclose=3") {
		t.Errorf("summary line missing errclose=3:\n%s", stderr)
	}

	_, stderr, code = run("-errclose=false", filepath.Join("testdata", "errclose"))
	if code != 0 {
		t.Errorf("-errclose=false still exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "errclose=off") {
		t.Errorf("summary line missing errclose=off:\n%s", stderr)
	}
}

func TestSummaryLine(t *testing.T) {
	on := only("atomicwrite", "errclose", "maporder", "metricname", "rawgo")
	line := summary(nil, 3, on)
	for _, wantSub := range []string{"i2vet:", "atomicwrite=0", "suppressed=3", "(clean)"} {
		if !strings.Contains(line, wantSub) {
			t.Errorf("summary %q missing %q", line, wantSub)
		}
	}
	line = summary([]diagnostic{{analyzer: "rawgo"}}, 0, only("rawgo"))
	if !strings.Contains(line, "rawgo=1") || !strings.Contains(line, "(1 diagnostics)") {
		t.Errorf("summary %q missing rawgo=1 count", line)
	}
	if !strings.Contains(line, "atomicwrite=off") {
		t.Errorf("summary %q should mark disabled analyzers off", line)
	}
}

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
