package i2mr

import (
	"testing"

	"i2mapreduce/internal/apps"
	"i2mapreduce/internal/datagen"
)

// checkRefresh exercises the Refresher contract once: Refresh must
// report the expected mode with positive wall time, a metrics report,
// and the consumed delta size, and Stats must reflect the refresh.
func checkRefresh(t *testing.T, r Refresher, wantMode, deltaInput, output string) *RefreshResult {
	t.Helper()
	before := r.Stats()
	res, err := r.Refresh(deltaInput, output)
	if err != nil {
		t.Fatalf("Refresh(%q): %v", deltaInput, err)
	}
	if res.Mode != wantMode {
		t.Fatalf("Refresh mode = %q, want %q", res.Mode, wantMode)
	}
	if res.Wall <= 0 {
		t.Fatalf("Refresh wall = %v, want > 0", res.Wall)
	}
	if res.Report == nil {
		t.Fatal("Refresh returned a nil report")
	}
	if res.DeltaRecords <= 0 {
		t.Fatalf("Refresh delta records = %d, want > 0", res.DeltaRecords)
	}
	after := r.Stats()
	if after.Refreshes != before.Refreshes+1 {
		t.Fatalf("Stats.Refreshes = %d after refresh, want %d", after.Refreshes, before.Refreshes+1)
	}
	if after.Mode != wantMode {
		t.Fatalf("Stats.Mode = %q, want %q", after.Mode, wantMode)
	}
	if after.LastWall != res.Wall || after.LastDeltaRecords != res.DeltaRecords {
		t.Fatalf("Stats last refresh = (%v, %d), want (%v, %d)",
			after.LastWall, after.LastDeltaRecords, res.Wall, res.DeltaRecords)
	}
	if after.TotalWall < after.LastWall {
		t.Fatalf("Stats.TotalWall = %v < LastWall %v", after.TotalWall, after.LastWall)
	}
	return res
}

// TestRefresherConformance proves both refreshable engines honor the
// unified Refresher contract: the one-step runner, the incremental
// iterative runner, and the latter's FullRefresher recompute arm.
func TestRefresherConformance(t *testing.T) {
	sys, err := New(Options{WorkDir: t.TempDir(), Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}

	// One-step engine.
	oneStep, err := sys.NewOneStep(apps.WordCountJob("conf-wc"))
	if err != nil {
		t.Fatal(err)
	}
	defer oneStep.Close()
	if err := sys.WritePairs("conf-docs", []Pair{
		{Key: "d1", Value: "a b a"},
		{Key: "d2", Value: "b c"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := oneStep.RunInitial("conf-docs", "conf-wc-v1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteDeltas("conf-docs-d1", []Delta{
		{Key: "d3", Value: "c c", Op: OpInsert},
	}); err != nil {
		t.Fatal(err)
	}
	checkRefresh(t, oneStep, ModeOneStep, "conf-docs-d1", "conf-wc-v2")
	outs, err := oneStep.Outputs()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, p := range outs {
		counts[p.Key] = p.Value
	}
	if counts["c"] != "3" {
		t.Fatalf("one-step Refresh produced %v, want c:3", counts)
	}

	// Incremental iterative engine, then its recompute arm over a
	// second delta.
	graph := datagen.Graph(7, 60, 3)
	if err := sys.WritePairs("conf-graph", graph); err != nil {
		t.Fatal(err)
	}
	inc, err := sys.NewIncremental(apps.PageRankSpec("conf-pr", apps.DefaultDamping), IncrementalConfig{
		NumPartitions: 2, MaxIterations: 100, Epsilon: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if _, err := inc.RunInitial("conf-graph"); err != nil {
		t.Fatal(err)
	}
	deltas, next := datagen.Mutate(8, graph, datagen.MutateOptions{
		ModifyFraction: 0.1, Rewrite: datagen.RewireGraphValue(60),
	})
	if err := sys.WriteDeltas("conf-graph-d1", deltas); err != nil {
		t.Fatal(err)
	}
	res := checkRefresh(t, inc, ModeIncremental, "conf-graph-d1", "")
	if res.Iterations <= 0 || !res.Converged {
		t.Fatalf("incremental Refresh: iterations %d converged %v", res.Iterations, res.Converged)
	}

	full := inc.FullRefresher()
	deltas2, _ := datagen.Mutate(9, next, datagen.MutateOptions{
		ModifyFraction: 0.1, Rewrite: datagen.RewireGraphValue(60),
	})
	if err := sys.WriteDeltas("conf-graph-d2", deltas2); err != nil {
		t.Fatal(err)
	}
	res2 := checkRefresh(t, full, ModeRecompute, "conf-graph-d2", "")
	if !res2.Converged {
		t.Fatal("recompute-arm Refresh did not converge")
	}
	// The recompute arm keeps its own history; the incremental arm's
	// stats must not have moved.
	if got := inc.Stats().Refreshes; got != 1 {
		t.Fatalf("incremental arm Refreshes = %d after recompute-arm refresh, want 1", got)
	}
}
